#include "net/wire.hpp"

#include <algorithm>

namespace reads::net {

void append_packet(std::vector<std::uint8_t>& out, const BlmPacket& p) {
  out.reserve(out.size() + packet_wire_size(p));
  put_u8(out, p.hub_id);
  put_u32(out, p.sequence);
  put_u16(out, p.first_monitor);
  put_u32(out, p.crc);
  put_u32(out, static_cast<std::uint32_t>(p.readings.size()));
  for (std::uint32_t r : p.readings) put_u32(out, r);
}

bool PacketDecoder::feed(std::span<const std::uint8_t> bytes) {
  if (broken_) return false;
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());

  // Decode every complete packet at the front of the buffer. `off` walks
  // forward so a read that coalesced many packets is consumed in one pass
  // (no quadratic erase-from-front).
  std::size_t off = 0;
  while (buf_.size() - off >= kPacketWireHeader) {
    const std::uint8_t* h = buf_.data() + off;
    const std::uint32_t count = get_u32(h + 11);
    if (count > limits_.max_readings) {
      // The length field is the only framing information a byte stream
      // carries; once it is implausible there is no boundary to resync on.
      broken_ = true;
      buf_.clear();
      return false;
    }
    const std::size_t need = kPacketWireHeader + 4 * std::size_t{count};
    if (buf_.size() - off < need) break;  // header complete, payload split

    BlmPacket p;
    p.hub_id = h[0];
    p.sequence = get_u32(h + 1);
    p.first_monitor = get_u16(h + 5);
    p.crc = get_u32(h + 7);
    p.readings.resize(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      p.readings[i] = get_u32(h + kPacketWireHeader + 4 * std::size_t{i});
    }
    ready_.push_back(std::move(p));
    ++decoded_;
    off += need;
  }
  buf_.erase(buf_.begin(),
             buf_.begin() + static_cast<std::ptrdiff_t>(off));
  return true;
}

std::optional<BlmPacket> PacketDecoder::next() {
  if (ready_.empty()) return std::nullopt;
  BlmPacket p = std::move(ready_.front());
  ready_.pop_front();
  return p;
}

}  // namespace reads::net
