#include "net/facility.hpp"

namespace reads::net {

FacilityLink::FacilityLink(FacilityParams params, std::uint64_t seed)
    : params_(std::move(params)),
      machine_(params_.machine, seed),
      rng_(util::derive_seed(seed, 0xFAC1)),
      assembler_([&] {
        AssemblerParams ap = params_.assembler;
        ap.monitors = params_.machine.monitors;
        ap.hubs = params_.hubs;
        return ap;
      }()) {
  const auto layout = hub_layout(params_.machine.monitors, params_.hubs);
  for (std::size_t h = 0; h < layout.size(); ++h) {
    hubs_.emplace_back(static_cast<std::uint8_t>(h), layout[h].first,
                       layout[h].second, params_.link, seed);
  }
}

AssembledFrame FacilityLink::tick() {
  const auto truth = machine_.sample_truth(rng_);
  const auto readings = machine_.readings(truth, rng_);
  std::vector<Delivery> deliveries;
  deliveries.reserve(hubs_.size());
  for (auto& hub : hubs_) {
    deliveries.push_back(hub.transmit(sequence_, readings));
  }
  if (tap_) tap_(sequence_, deliveries);
  auto frame = assembler_.assemble(sequence_, deliveries);
  ++sequence_;
  return frame;
}

}  // namespace reads::net
