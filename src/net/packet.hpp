// Wire format of the hub-to-central-node link.
//
// The facility distributes the 260 BLMs across seven hub crates around the
// tunnel; every 3 ms each hub digitizes its monitors and ships one UDP
// datagram to the central node (paper §III-A: "It receives inputs from
// seven BLM hubs distributed around the accelerator complex"). Readings
// travel as raw 32-bit fixed-point counts exactly as the digitizers emit
// them.
#pragma once

#include <cstdint>
#include <vector>

namespace reads::net {

struct BlmPacket {
  std::uint8_t hub_id = 0;        ///< 0..6
  std::uint32_t sequence = 0;     ///< frame tick this packet belongs to
  std::uint16_t first_monitor = 0;  ///< ring index of the first reading
  std::vector<std::uint32_t> readings;  ///< raw digitizer counts

  std::size_t wire_bytes() const noexcept {
    // 8-byte header + 4 bytes per reading (+ UDP/IP/Ethernet framing).
    return 8 + readings.size() * 4 + 42;
  }
};

/// Digitizer counts are unsigned fixed-point with 4 fraction bits; the
/// 105k-120k readings fit comfortably in 32 bits.
constexpr double kCountScale = 16.0;

inline std::uint32_t encode_reading(double value) noexcept {
  if (value < 0.0) return 0;
  const double scaled = value * kCountScale;
  if (scaled >= 4294967295.0) return 4294967295u;
  return static_cast<std::uint32_t>(scaled);
}

inline double decode_reading(std::uint32_t count) noexcept {
  return static_cast<double>(count) / kCountScale;
}

}  // namespace reads::net
