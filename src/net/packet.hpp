// Wire format of the hub-to-central-node link.
//
// The facility distributes the 260 BLMs across seven hub crates around the
// tunnel; every 3 ms each hub digitizes its monitors and ships one UDP
// datagram to the central node (paper §III-A: "It receives inputs from
// seven BLM hubs distributed around the accelerator complex"). Readings
// travel as raw 32-bit fixed-point counts exactly as the digitizers emit
// them, protected by a CRC-32 over the header and payload — in a radiation
// environment bit flips on the wire (or in hub SRAM) are an expected fault,
// not an anomaly, and the assembler must be able to reject a damaged packet
// instead of feeding garbage readings to the trip logic.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace reads::net {

struct BlmPacket {
  std::uint8_t hub_id = 0;        ///< 0..6
  std::uint32_t sequence = 0;     ///< frame tick this packet belongs to
  std::uint16_t first_monitor = 0;  ///< ring index of the first reading
  std::uint32_t crc = 0;          ///< CRC-32 over header fields + readings
  std::vector<std::uint32_t> readings;  ///< raw digitizer counts

  std::size_t wire_bytes() const noexcept {
    // 12-byte header (incl. CRC) + 4 bytes per reading (+ UDP/IP/Ethernet
    // framing).
    return 12 + readings.size() * 4 + 42;
  }
};

/// Incremental CRC-32 (reflected, polynomial 0xEDB88320 — the Ethernet /
/// zlib polynomial). Bitwise, table-free: packets are a few hundred bytes
/// every 3 ms, so the cost is noise next to the NN inference.
class Crc32 {
 public:
  constexpr void add_byte(std::uint8_t b) noexcept {
    state_ ^= b;
    for (int k = 0; k < 8; ++k) {
      state_ = (state_ >> 1) ^ (0xEDB88320u & (0u - (state_ & 1u)));
    }
  }
  constexpr void add_u16(std::uint16_t v) noexcept {
    add_byte(static_cast<std::uint8_t>(v & 0xFFu));
    add_byte(static_cast<std::uint8_t>(v >> 8));
  }
  constexpr void add_u32(std::uint32_t v) noexcept {
    add_byte(static_cast<std::uint8_t>(v & 0xFFu));
    add_byte(static_cast<std::uint8_t>((v >> 8) & 0xFFu));
    add_byte(static_cast<std::uint8_t>((v >> 16) & 0xFFu));
    add_byte(static_cast<std::uint8_t>(v >> 24));
  }
  constexpr std::uint32_t value() const noexcept { return state_ ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// CRC over everything the packet carries except the CRC field itself.
inline std::uint32_t packet_crc(const BlmPacket& p) noexcept {
  Crc32 crc;
  crc.add_byte(p.hub_id);
  crc.add_u32(p.sequence);
  crc.add_u16(p.first_monitor);
  crc.add_u32(static_cast<std::uint32_t>(p.readings.size()));
  for (std::uint32_t r : p.readings) crc.add_u32(r);
  return crc.value();
}

/// Stamp the packet's CRC (hubs call this last, after filling readings).
inline void seal_packet(BlmPacket& p) noexcept { p.crc = packet_crc(p); }

/// True when the packet survived the wire intact.
inline bool packet_crc_ok(const BlmPacket& p) noexcept {
  return p.crc == packet_crc(p);
}

/// Digitizer counts are unsigned fixed-point with 4 fraction bits; the
/// 105k-120k readings fit comfortably in 32 bits.
constexpr double kCountScale = 16.0;

inline std::uint32_t encode_reading(double value) noexcept {
  // NaN (a glitched digitizer front-end) must not reach the integer cast:
  // converting NaN to an unsigned is undefined behavior. Encode it — and any
  // negative value — as zero counts; the assembler's plausibility gate then
  // treats the dead reading like any other implausible sample.
  if (std::isnan(value) || value < 0.0) return 0;
  const double scaled = value * kCountScale;
  if (scaled >= 4294967295.0) return 4294967295u;
  return static_cast<std::uint32_t>(scaled);
}

inline double decode_reading(std::uint32_t count) noexcept {
  return static_cast<double>(count) / kCountScale;
}

}  // namespace reads::net
