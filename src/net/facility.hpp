// FacilityLink: the sensing side of the deployment — a machine model, its
// seven hub crates, and the frame assembler, producing the stream of
// assembled raw frames the central node consumes (step 0 of Fig. 2).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "blm/machine.hpp"
#include "net/assembler.hpp"
#include "net/hub.hpp"

namespace reads::net {

struct FacilityParams {
  blm::MachineConfig machine = blm::MachineConfig::fermilab_like();
  LinkParams link;
  AssemblerParams assembler;
  std::size_t hubs = 7;
};

class FacilityLink {
 public:
  /// Hook between hub transmission and frame assembly: sees (and may mutate)
  /// this tick's deliveries. This is where the fault harness corrupts,
  /// duplicates, reorders, or blacks out packets — the link model itself
  /// stays fault-agnostic, and with no tap installed the tick path is
  /// byte-identical to before.
  using DeliveryTap =
      std::function<void(std::uint32_t sequence, std::vector<Delivery>&)>;

  FacilityLink(FacilityParams params, std::uint64_t seed);

  void set_delivery_tap(DeliveryTap tap) { tap_ = std::move(tap); }

  /// One 3 ms tick: sample the machine, transmit all hubs, assemble.
  AssembledFrame tick();

  std::uint32_t sequence() const noexcept { return sequence_; }
  const std::vector<BlmHub>& hubs() const noexcept { return hubs_; }
  const FrameAssembler& assembler() const noexcept { return assembler_; }
  const blm::MachineModel& machine() const noexcept { return machine_; }

 private:
  FacilityParams params_;
  blm::MachineModel machine_;
  util::Xoshiro256 rng_;
  std::vector<BlmHub> hubs_;
  FrameAssembler assembler_;
  std::uint32_t sequence_ = 0;
  DeliveryTap tap_;
};

}  // namespace reads::net
