// A BLM hub crate: owns a contiguous span of monitors, digitizes their
// readings every 3 ms tick, and ships one datagram to the central node.
// The link model covers serialization, switch transit with jitter, and a
// small loss probability (industrial Ethernet in a radiation environment).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "net/packet.hpp"
#include "util/rng.hpp"

namespace reads::net {

struct LinkParams {
  double bandwidth_gbps = 1.0;    ///< hub uplink
  double base_latency_us = 12.0;  ///< NIC + switch transit
  double jitter_sigma_us = 3.0;   ///< transit jitter (half-normal-ish)
  double drop_probability = 0.0;  ///< per-packet loss
};

/// Result of one transmission attempt.
struct Delivery {
  BlmPacket packet;
  double arrival_us = 0.0;  ///< relative to the frame tick
  bool dropped = false;
};

class BlmHub {
 public:
  BlmHub(std::uint8_t id, std::uint16_t first_monitor, std::uint16_t count,
         LinkParams link, std::uint64_t seed);

  std::uint8_t id() const noexcept { return id_; }
  std::uint16_t first_monitor() const noexcept { return first_; }
  std::uint16_t monitor_count() const noexcept { return count_; }

  /// Digitize this hub's slice of the frame and transmit it.
  /// `frame_readings` are the raw readings of the whole ring.
  Delivery transmit(std::uint32_t sequence,
                    std::span<const double> frame_readings);

  std::uint64_t packets_sent() const noexcept { return sent_; }
  std::uint64_t packets_dropped() const noexcept { return dropped_; }

 private:
  std::uint8_t id_;
  std::uint16_t first_;
  std::uint16_t count_;
  LinkParams link_;
  util::Xoshiro256 rng_;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Carve `monitors` monitors into `hubs` contiguous, nearly equal spans —
/// the facility's seven-hub layout for the 260-monitor ring.
std::vector<std::pair<std::uint16_t, std::uint16_t>> hub_layout(
    std::size_t monitors, std::size_t hubs = 7);

}  // namespace reads::net
