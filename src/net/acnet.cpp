#include "net/acnet.hpp"

namespace reads::net {

AcnetPublisher::AcnetPublisher(AcnetParams params) : params_(params) {}

const StatusMessage& AcnetPublisher::publish(std::uint32_t sequence,
                                             const std::string& verdict,
                                             double mi_score,
                                             double rr_score) {
  StatusMessage msg;
  msg.sequence = sequence;
  msg.verdict = verdict;
  msg.mi_score = mi_score;
  msg.rr_score = rr_score;
  msg.publish_latency_us = params_.uplink_latency_us;
  journal_.push_back(std::move(msg));
  while (journal_.size() > params_.journal_depth) journal_.pop_front();
  ++published_;
  if (verdict == "MI") ++trips_mi_;
  if (verdict == "RR") ++trips_rr_;
  return journal_.back();
}

}  // namespace reads::net
