// Byte-level wire codec for `BlmPacket` streams.
//
// Until now packets travelled between simulated components as in-memory
// structs; the cluster tier (DESIGN.md §10) ships them over real TCP and
// Unix-domain sockets, where read() returns arbitrary fragments: a packet
// may arrive one byte at a time, its CRC trailer may be split across two
// reads, and two packets may coalesce into one. append_packet() defines the
// canonical little-endian serialization and PacketDecoder reassembles a
// byte stream back into packets across any chunk boundary — framing is
// length-delimited by the reading-count field, and content trust stays
// where it always was: the CRC gauntlet in FrameAssembler.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "net/packet.hpp"

namespace reads::net {

// ---- little-endian primitives (shared with the cluster protocol) --------

inline void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}
inline void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFFu));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
  }
}
inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
  }
}

inline std::uint16_t get_u16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
inline std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}
inline std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

// ---- packet serialization ----------------------------------------------

/// Serialized header: hub_id(1) + sequence(4) + first_monitor(2) + crc(4)
/// + reading_count(4). The CRC is the packet's own seal (packet_crc), not a
/// framing checksum — framing integrity is the transport's job (TCP/UDS are
/// reliable byte streams); content integrity stays end-to-end.
inline constexpr std::size_t kPacketWireHeader = 15;

/// Exact serialized size of `p` (header + 4 bytes per reading).
inline std::size_t packet_wire_size(const BlmPacket& p) noexcept {
  return kPacketWireHeader + 4 * p.readings.size();
}

/// Append the canonical serialization of `p` (including its current CRC —
/// callers seal first) to `out`.
void append_packet(std::vector<std::uint8_t>& out, const BlmPacket& p);

/// Reassembles a `BlmPacket` byte stream delivered in arbitrary fragments.
///
/// feed() buffers bytes and decodes every complete packet into an internal
/// ready queue drained with next(). Decoding never validates content (CRC,
/// layout, plausibility) — that is FrameAssembler's gauntlet — but it does
/// bound the reading count: a stream claiming more than
/// `limits.max_readings` readings per packet cannot be framed (the length
/// field itself is untrusted input) and permanently breaks the decoder,
/// because a byte stream with a corrupt length field has no packet
/// boundaries left to recover. Connection owners drop broken streams.
class PacketDecoder {
 public:
  struct Limits {
    /// Upper bound on readings per packet; the facility ring is 260
    /// monitors, so the default leaves generous headroom for jumbo
    /// (whole-ring) packets while still refusing absurd length fields.
    std::size_t max_readings = 65536;
  };

  PacketDecoder() = default;
  explicit PacketDecoder(Limits limits) : limits_(limits) {}

  /// Buffer `bytes` and decode every now-complete packet. Returns false —
  /// and ignores all further input — once the stream is broken.
  bool feed(std::span<const std::uint8_t> bytes);
  bool feed(const std::uint8_t* data, std::size_t len) {
    return feed(std::span<const std::uint8_t>(data, len));
  }

  /// Next decoded packet in stream order; nullopt when none is complete.
  std::optional<BlmPacket> next();

  bool broken() const noexcept { return broken_; }
  std::size_t ready() const noexcept { return ready_.size(); }
  /// Buffered bytes of the (incomplete) packet currently being assembled.
  std::size_t pending_bytes() const noexcept { return buf_.size(); }
  std::uint64_t packets_decoded() const noexcept { return decoded_; }

 private:
  Limits limits_;
  std::vector<std::uint8_t> buf_;
  std::deque<BlmPacket> ready_;
  bool broken_ = false;
  std::uint64_t decoded_ = 0;
};

}  // namespace reads::net
