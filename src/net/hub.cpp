#include "net/hub.hpp"

#include <cmath>
#include <stdexcept>

namespace reads::net {

BlmHub::BlmHub(std::uint8_t id, std::uint16_t first_monitor,
               std::uint16_t count, LinkParams link, std::uint64_t seed)
    : id_(id),
      first_(first_monitor),
      count_(count),
      link_(link),
      rng_(util::derive_seed(seed, 0x4200u + id)) {
  if (count_ == 0) throw std::invalid_argument("BlmHub: empty monitor span");
}

Delivery BlmHub::transmit(std::uint32_t sequence,
                          std::span<const double> frame_readings) {
  if (first_ + count_ > frame_readings.size()) {
    throw std::invalid_argument("BlmHub: span beyond frame");
  }
  Delivery d;
  d.packet.hub_id = id_;
  d.packet.sequence = sequence;
  d.packet.first_monitor = first_;
  d.packet.readings.reserve(count_);
  for (std::uint16_t m = 0; m < count_; ++m) {
    d.packet.readings.push_back(
        encode_reading(frame_readings[static_cast<std::size_t>(first_) + m]));
  }
  seal_packet(d.packet);
  ++sent_;
  if (rng_.bernoulli(link_.drop_probability)) {
    d.dropped = true;
    ++dropped_;
    return d;
  }
  const double wire_us = static_cast<double>(d.packet.wire_bytes()) * 8.0 /
                         (link_.bandwidth_gbps * 1e3);
  const double jitter = std::fabs(rng_.normal(0.0, link_.jitter_sigma_us));
  d.arrival_us = link_.base_latency_us + wire_us + jitter;
  return d;
}

std::vector<std::pair<std::uint16_t, std::uint16_t>> hub_layout(
    std::size_t monitors, std::size_t hubs) {
  if (hubs == 0 || monitors < hubs) {
    throw std::invalid_argument("hub_layout: need at least one monitor/hub");
  }
  std::vector<std::pair<std::uint16_t, std::uint16_t>> spans;
  const std::size_t base = monitors / hubs;
  const std::size_t extra = monitors % hubs;
  std::uint16_t cursor = 0;
  for (std::size_t h = 0; h < hubs; ++h) {
    const auto count = static_cast<std::uint16_t>(base + (h < extra ? 1 : 0));
    spans.emplace_back(cursor, count);
    cursor = static_cast<std::uint16_t>(cursor + count);
  }
  return spans;
}

}  // namespace reads::net
