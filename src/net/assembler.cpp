#include "net/assembler.hpp"

#include <algorithm>
#include <stdexcept>

namespace reads::net {

FrameAssembler::FrameAssembler(AssemblerParams params)
    : params_(params),
      layout_(hub_layout(params.monitors, params.hubs)),
      last_known_(params.monitors, 0.0),
      hub_age_(params.hubs, 0),
      accepted_(params.hubs, 0) {
  if (params_.monitors == 0) {
    throw std::invalid_argument("FrameAssembler: zero monitors");
  }
}

AssembledFrame FrameAssembler::assemble(
    std::uint32_t sequence, const std::vector<Delivery>& deliveries) {
  AssembledFrame out;
  assemble_into(sequence, deliveries, out);
  return out;
}

void FrameAssembler::assemble_into(std::uint32_t sequence,
                                   const std::vector<Delivery>& deliveries,
                                   AssembledFrame& out) {
  out.sequence = sequence;
  out.assembly_us = 0.0;
  out.packets_used = 0;
  out.packets_missing = 0;
  out.packets_rejected = 0;
  out.stale_hubs = 0;
  out.max_staleness_ticks = 0;
  out.degraded = false;
  const std::size_t shape[2] = {params_.monitors, 1};
  out.raw.resize(shape);  // no-op (no allocation) when already this shape
  // Start from last-known values; accepted packets overwrite their span.
  for (std::size_t m = 0; m < params_.monitors; ++m) {
    out.raw[m] = static_cast<float>(last_known_[m]);
  }

  // One accepted packet per hub per tick; everything else is counted and
  // substituted. The gauntlet ordering matters: cheap checks (sequence,
  // layout) run before the CRC so a flood of stale or malformed packets
  // cannot buy CPU time with checksummed garbage, and the duplicate check
  // runs last so a corrupt copy of an already-accepted packet is attributed
  // to its real cause (CRC) rather than masked as a duplicate.
  std::fill(accepted_.begin(), accepted_.end(), char{0});
  std::vector<char>& accepted = accepted_;
  for (const auto& d : deliveries) {
    if (d.dropped) {
      ++counters_.dropped_packets;
      ++lost_;
      continue;
    }
    if (d.arrival_us > params_.deadline_us) {
      ++counters_.late_packets;
      ++lost_;
      continue;
    }
    if (d.packet.sequence != sequence) {
      ++counters_.sequence_rejects;
      ++out.packets_rejected;
      continue;
    }
    const std::size_t hub = d.packet.hub_id;
    if (hub >= params_.hubs || d.packet.first_monitor != layout_[hub].first ||
        d.packet.readings.size() != layout_[hub].second) {
      ++counters_.malformed_rejects;
      ++out.packets_rejected;
      continue;
    }
    if (!packet_crc_ok(d.packet)) {
      ++counters_.crc_rejects;
      ++out.packets_rejected;
      continue;
    }
    if (accepted[hub]) {
      ++counters_.duplicate_rejects;
      ++out.packets_rejected;
      continue;
    }
    accepted[hub] = true;
    const std::size_t first = d.packet.first_monitor;
    for (std::size_t i = 0; i < d.packet.readings.size(); ++i) {
      const double v = decode_reading(d.packet.readings[i]);
      if (v < params_.plausible_min || v > params_.plausible_max) {
        // Keep the monitor's last-known value (already in out.raw).
        ++counters_.implausible_readings;
        continue;
      }
      out.raw[first + i] = static_cast<float>(v);
      last_known_[first + i] = v;
    }
    ++out.packets_used;
    out.assembly_us = std::max(out.assembly_us, d.arrival_us);
  }

  for (std::size_t h = 0; h < params_.hubs; ++h) {
    if (accepted[h]) {
      hub_age_[h] = 0;
    } else {
      ++out.packets_missing;
      ++hub_age_[h];
    }
    out.max_staleness_ticks = std::max(out.max_staleness_ticks, hub_age_[h]);
    if (hub_age_[h] > params_.max_stale_ticks) ++out.stale_hubs;
  }
  out.degraded = out.stale_hubs > 0;
  if (out.packets_missing > 0) {
    // We waited until the deadline before giving up on stragglers.
    out.assembly_us = params_.deadline_us;
  }
  ++frames_;
}

}  // namespace reads::net
