#include "net/assembler.hpp"

#include <algorithm>
#include <stdexcept>

namespace reads::net {

FrameAssembler::FrameAssembler(AssemblerParams params)
    : params_(params), last_known_(params.monitors, 0.0) {
  if (params_.monitors == 0) {
    throw std::invalid_argument("FrameAssembler: zero monitors");
  }
}

AssembledFrame FrameAssembler::assemble(
    std::uint32_t sequence, const std::vector<Delivery>& deliveries) {
  AssembledFrame out;
  out.sequence = sequence;
  out.raw = tensor::Tensor({params_.monitors, 1});
  // Start from last-known values; accepted packets overwrite their span.
  for (std::size_t m = 0; m < params_.monitors; ++m) {
    out.raw[m] = static_cast<float>(last_known_[m]);
  }

  std::size_t expected = 0;
  for (const auto& d : deliveries) {
    ++expected;
    if (d.packet.sequence != sequence) {
      throw std::invalid_argument("FrameAssembler: stale packet sequence");
    }
    if (d.dropped || d.arrival_us > params_.deadline_us) {
      ++out.packets_missing;
      ++lost_;
      continue;
    }
    const std::size_t first = d.packet.first_monitor;
    if (first + d.packet.readings.size() > params_.monitors) {
      throw std::invalid_argument("FrameAssembler: packet beyond ring");
    }
    for (std::size_t i = 0; i < d.packet.readings.size(); ++i) {
      const double v = decode_reading(d.packet.readings[i]);
      out.raw[first + i] = static_cast<float>(v);
      last_known_[first + i] = v;
    }
    ++out.packets_used;
    out.assembly_us = std::max(out.assembly_us, d.arrival_us);
  }
  if (expected != params_.hubs) {
    throw std::invalid_argument("FrameAssembler: wrong delivery count");
  }
  if (out.packets_missing > 0) {
    // We waited until the deadline before giving up on stragglers.
    out.assembly_us = params_.deadline_us;
  }
  ++frames_;
  return out;
}

}  // namespace reads::net
