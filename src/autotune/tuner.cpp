#include "autotune/tuner.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>

namespace reads::autotune {

namespace {

Objectives objectives_of(const Validation& v) {
  Objectives o;
  o.quant_err = v.quant_err();
  o.latency_ms = v.cheap.latency_ms;
  o.aluts = static_cast<double>(v.cheap.aluts);
  o.dsps = static_cast<double>(v.cheap.dsps);
  o.ram_blocks = static_cast<double>(v.cheap.ram_blocks);
  return o;
}

}  // namespace

bool dominates_baseline(const Validation& candidate,
                        const Validation& baseline) noexcept {
  if (!candidate.cheap.feasible()) return false;
  if (candidate.accuracy_mi < baseline.accuracy_mi ||
      candidate.accuracy_rr < baseline.accuracy_rr) {
    return false;
  }
  const auto& c = candidate.cheap;
  const auto& b = baseline.cheap;
  const bool latency_better = c.latency_ms < b.latency_ms;
  const bool resources_leq =
      c.aluts <= b.aluts && c.dsps <= b.dsps && c.ram_blocks <= b.ram_blocks;
  const bool resources_better =
      resources_leq &&
      (c.aluts < b.aluts || c.dsps < b.dsps || c.ram_blocks < b.ram_blocks);
  return latency_better || resources_better;
}

Autotuner::Autotuner(const SearchSpace& space, const Evaluator& evaluator,
                     TuneConfig config)
    : space_(space), evaluator_(evaluator), cfg_(config) {
  if (!evaluator_.can_validate()) {
    throw std::invalid_argument("Autotuner: evaluator cannot validate");
  }
  if (cfg_.budget < 2) {
    throw std::invalid_argument("Autotuner: budget must cover baseline + 1");
  }
}

TuneOutcome Autotuner::run() {
  TuneOutcome out;
  ParetoFront front;
  Surrogate surrogate(cfg_.surrogate);
  util::Xoshiro256 rng(cfg_.seed);
  std::set<std::string> seen;
  std::vector<std::pair<double, double>> scored;

  // Validate one candidate: predict first (so the scored pair is honest —
  // the surrogate never sees the answer before predicting), then measure,
  // then train.
  const auto validate = [&](const Candidate& c) -> std::optional<std::size_t> {
    const std::string key = c.key();
    if (!seen.insert(key).second) {
      ++out.duplicates_skipped;
      return std::nullopt;
    }
    const FeatureVec feats = space_.features(c);
    const auto predicted = surrogate.predict(feats);
    EvaluatedCandidate ev;
    ev.candidate = c;
    ev.result = evaluator_.validate(c);
    ev.index = out.evaluated.size();
    if (predicted) {
      ev.predicted = *predicted;
      ev.had_prediction = true;
      scored.emplace_back(*predicted, ev.result.quant_err());
    }
    surrogate.observe(feats, ev.result.quant_err());
    front.insert({key, objectives_of(ev.result), ev.index});
    out.evaluated.push_back(std::move(ev));
    return out.evaluated.size() - 1;
  };
  const auto budget_left = [&] { return out.evaluated.size() < cfg_.budget; };

  // 1. Baseline (the layer_based_config seed point).
  const Candidate baseline = space_.baseline_candidate();
  const auto base_idx = validate(baseline);
  if (!base_idx) {
    throw std::logic_error("Autotuner: baseline validation failed");
  }
  out.baseline_index = *base_idx;
  // Copied, not referenced: out.evaluated reallocates as the search runs.
  const Validation base_v = out.evaluated[out.baseline_index].result;

  // 2a. Scripted width / headroom / reuse-scaling seeds (cheap-screened).
  std::vector<Candidate> seeds;
  for (const int w : {10, 12, 14, 18}) {
    Candidate c = baseline;
    for (auto& [name, gene] : c.genes) gene.width = w;
    seeds.push_back(space_.clamped(std::move(c)));
  }
  for (const int delta : {-1, 1}) {
    Candidate c = baseline;
    for (auto& [name, gene] : c.genes) gene.int_delta = delta;
    seeds.push_back(space_.clamped(std::move(c)));
  }
  for (const bool up : {true, false}) {
    Candidate c = baseline;
    for (auto& [name, gene] : c.genes) {
      gene.reuse = up ? gene.reuse * 2 : std::max<std::size_t>(1, gene.reuse / 2);
    }
    seeds.push_back(space_.clamped(std::move(c)));
  }
  for (const auto& c : seeds) {
    if (!budget_left()) break;
    if (seen.contains(c.key())) {
      ++out.duplicates_skipped;
      continue;
    }
    if (!evaluator_.cheap(c).feasible()) {
      ++out.infeasible_skipped;
      continue;
    }
    validate(c);
  }

  // 2b. Greedy reuse descent. Reuse does not change quantized numerics, so
  // each accepted step keeps the baseline's accuracy bit-for-bit at
  // strictly fewer predicted cycles — a guaranteed dominance chain.
  Candidate cursor = baseline;
  Validation cursor_v = base_v;
  for (std::size_t step = 0;
       step < cfg_.greedy_descent_steps && budget_left(); ++step) {
    // MAC layers ordered by their cycle share of the cursor point.
    std::vector<std::pair<std::size_t, std::string>> hot;
    for (const auto& lc : cursor_v.cheap.layer_cycles) {
      const auto it = cursor.genes.find(lc.name);
      if (it != cursor.genes.end() && it->second.reuse > 1) {
        hot.emplace_back(lc.cycles, lc.name);
      }
    }
    std::sort(hot.begin(), hot.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
    bool advanced = false;
    for (const auto& [cycles, name] : hot) {
      Candidate next = cursor;
      next.genes[name].reuse = std::max<std::size_t>(
          1, next.genes[name].reuse / 2);
      next = space_.clamped(std::move(next));
      if (seen.contains(next.key())) continue;
      const CheapEval screen = evaluator_.cheap(next);
      if (!screen.feasible() ||
          screen.total_cycles >= cursor_v.cheap.total_cycles) {
        ++out.infeasible_skipped;
        continue;
      }
      const auto idx = validate(next);
      if (!idx) continue;
      cursor = std::move(next);
      cursor_v = out.evaluated[*idx].result;
      advanced = true;
      break;
    }
    if (!advanced) break;
  }

  // 3. Surrogate-guided rounds.
  std::size_t dry = 0;
  while (budget_left() && out.rounds < cfg_.max_rounds &&
         dry < cfg_.max_dry_rounds) {
    ++out.rounds;
    // Parents: current Pareto-front members (the baseline starts there and
    // front points are exactly the interesting trade-offs).
    const auto& parents = front.points();
    if (parents.empty()) break;

    std::vector<Candidate> fresh;
    std::set<std::string> round_keys;
    for (std::size_t i = 0; i < cfg_.proposals_per_round; ++i) {
      ++out.proposals;
      Candidate child;
      if (parents.size() >= 2 && rng.bernoulli(0.25)) {
        const std::size_t a = rng.uniform_int(parents.size());
        std::size_t b = rng.uniform_int(parents.size() - 1);
        if (b >= a) ++b;
        child = space_.crossover(out.evaluated[parents[a].eval_index].candidate,
                                 out.evaluated[parents[b].eval_index].candidate,
                                 rng);
      } else {
        const std::size_t p = rng.uniform_int(parents.size());
        child = space_.mutate(out.evaluated[parents[p].eval_index].candidate,
                              rng);
      }
      const std::string key = child.key();
      if (seen.contains(key) || !round_keys.insert(key).second) {
        ++out.duplicates_skipped;
        continue;
      }
      fresh.push_back(std::move(child));
    }

    // Cheap screen, then surrogate ranking.
    struct Survivor {
      Candidate candidate;
      double predicted = 0.0;
      bool has_prediction = false;
      std::size_t order = 0;
    };
    std::vector<Survivor> survivors;
    for (auto& c : fresh) {
      if (!evaluator_.cheap(c).feasible()) {
        ++out.infeasible_skipped;
        continue;
      }
      Survivor s;
      s.order = survivors.size();
      if (const auto p = surrogate.predict(space_.features(c))) {
        s.predicted = *p;
        s.has_prediction = true;
      }
      s.candidate = std::move(c);
      survivors.push_back(std::move(s));
    }
    if (survivors.empty()) {
      ++dry;
      continue;
    }
    std::stable_sort(survivors.begin(), survivors.end(),
                     [](const Survivor& a, const Survivor& b) {
                       if (a.has_prediction != b.has_prediction) {
                         return a.has_prediction;
                       }
                       if (!a.has_prediction) return a.order < b.order;
                       return a.predicted < b.predicted;
                     });
    const std::size_t chosen = std::min(cfg_.shortlist, survivors.size());
    std::size_t validated_this_round = 0;
    for (std::size_t i = 0; i < chosen && budget_left(); ++i) {
      if (validate(survivors[i].candidate)) ++validated_this_round;
    }
    // Off-policy explorers from the unchosen tail keep the scored pairs an
    // honest sample instead of only "predicted best" points.
    for (std::size_t e = 0;
         e < cfg_.explorers && chosen + e < survivors.size() && budget_left();
         ++e) {
      const std::size_t tail = survivors.size() - chosen;
      const std::size_t pick = chosen + rng.uniform_int(tail);
      if (validate(survivors[pick].candidate)) ++validated_this_round;
    }
    dry = validated_this_round == 0 ? dry + 1 : 0;
  }

  // Surrogate-quality report and final selection.
  out.spearman_rank = spearman(scored);
  out.scored_pairs = scored.size();
  out.scored = std::move(scored);
  for (const auto& ev : out.evaluated) {
    if (ev.index == out.baseline_index) continue;
    if (!dominates_baseline(ev.result, base_v)) continue;
    if (!out.selected_index) {
      out.selected_index = ev.index;
      continue;
    }
    const auto& best = out.evaluated[*out.selected_index];
    const auto& c = ev.result.cheap;
    const auto& s = best.result.cheap;
    const bool better =
        c.latency_ms != s.latency_ms ? c.latency_ms < s.latency_ms
        : c.aluts != s.aluts         ? c.aluts < s.aluts
        : ev.candidate.key() < best.candidate.key();
    if (better) out.selected_index = ev.index;
  }
  out.selected_dominates = out.selected_index.has_value();
  out.front = front.points();
  return out;
}

}  // namespace reads::autotune
