#include "autotune/pareto.hpp"

#include <algorithm>

namespace reads::autotune {

namespace {

bool leq_all(const Objectives& a, const Objectives& b) noexcept {
  return a.quant_err <= b.quant_err && a.latency_ms <= b.latency_ms &&
         a.aluts <= b.aluts && a.dsps <= b.dsps &&
         a.ram_blocks <= b.ram_blocks;
}

bool equal_all(const Objectives& a, const Objectives& b) noexcept {
  return leq_all(a, b) && leq_all(b, a);
}

}  // namespace

bool dominates(const Objectives& a, const Objectives& b) noexcept {
  return leq_all(a, b) && !equal_all(a, b);
}

bool ParetoFront::insert(ParetoPoint point) {
  for (const auto& p : points_) {
    if (p.key == point.key) return false;
    if (dominates(p.obj, point.obj) || equal_all(p.obj, point.obj)) {
      return false;
    }
  }
  std::erase_if(points_, [&](const ParetoPoint& p) {
    return dominates(point.obj, p.obj);
  });
  points_.push_back(std::move(point));
  return true;
}

}  // namespace reads::autotune
