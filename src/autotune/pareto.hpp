// Multi-objective Pareto frontier over validated candidates.
//
// Objectives (all minimized): quantization error, predicted latency, and
// the three resource axes (ALUTs, DSPs, RAM blocks). A point joins the
// front only if no member dominates it; members it dominates are ejected.
// Insertion order is deterministic, so the front is reproducible from a
// fixed tuner seed.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace reads::autotune {

/// One candidate's scores on the minimized axes.
struct Objectives {
  double quant_err = 0.0;   ///< mean |quantized - float| on holdout frames
  double latency_ms = 0.0;  ///< LatencyModel prediction
  double aluts = 0.0;
  double dsps = 0.0;
  double ram_blocks = 0.0;
};

/// a dominates b: no worse on every axis, strictly better on at least one.
bool dominates(const Objectives& a, const Objectives& b) noexcept;

struct ParetoPoint {
  std::string key;        ///< Candidate::key()
  Objectives obj;
  std::size_t eval_index = 0;  ///< index into the tuner's evaluated list
};

class ParetoFront {
 public:
  /// Returns true when the point joined the front (it was not dominated by
  /// and did not duplicate an existing member); dominated members are
  /// removed. A point tied-equal with a member on every axis is rejected.
  bool insert(ParetoPoint point);

  const std::vector<ParetoPoint>& points() const noexcept { return points_; }
  std::size_t size() const noexcept { return points_.size(); }

 private:
  std::vector<ParetoPoint> points_;
};

}  // namespace reads::autotune
