// Surrogate-guided search over the per-layer <W, I, reuse> space.
//
// The loop (deterministic under a fixed seed, regardless of --threads):
//
//   1. validate the layer_based_config baseline (the seed point);
//   2. scripted seeds: uniform-width variants, global reuse scalings,
//      integer-headroom shifts, and a greedy reuse *descent* — repeatedly
//      halve the reuse of the most cycle-expensive MAC layer while the
//      skeleton still fits the device and the deadline. Reuse does not
//      change quantized numerics, so each descent step keeps the baseline's
//      exact accuracy at strictly lower predicted latency — guaranteeing
//      points that dominate the baseline;
//   3. search rounds until the validation budget is spent: propose
//      mutations/crossovers of Pareto-front members, discard duplicates,
//      cheap-screen infeasible points (device budget / 3 ms deadline),
//      rank survivors with the ridge surrogate, validate a shortlist of
//      the predicted-best plus a random explorer, train the surrogate on
//      every measured cost, and fold results into the Pareto front.
//
// The outcome carries the full evaluated history, the validated Pareto
// front, the (predicted, measured) pairs' Spearman rank correlation — the
// surrogate-quality number bench_autotune gates — and the selected point:
// the lowest-latency candidate that dominates the baseline (>= accuracy on
// both channels AND lower latency or no-worse/strictly-better resources).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "autotune/evaluator.hpp"
#include "autotune/pareto.hpp"
#include "autotune/space.hpp"
#include "autotune/surrogate.hpp"

namespace reads::autotune {

struct TuneConfig {
  /// Total validation budget, including the baseline and scripted seeds.
  std::size_t budget = 64;
  std::size_t proposals_per_round = 48;
  /// Predicted-best candidates validated per round...
  std::size_t shortlist = 6;
  /// ...plus this many randomly-drawn feasible survivors (keeps the
  /// surrogate's training set off-policy enough to measure honestly).
  std::size_t explorers = 1;
  std::size_t greedy_descent_steps = 4;
  std::size_t max_rounds = 64;
  /// Stop after this many consecutive rounds with no feasible proposal.
  std::size_t max_dry_rounds = 3;
  std::uint64_t seed = 1;
  SurrogateConfig surrogate{};
};

struct EvaluatedCandidate {
  Candidate candidate;
  Validation result;
  double predicted = 0.0;    ///< surrogate's cost prediction, if it had one
  bool had_prediction = false;
  std::size_t index = 0;     ///< position in TuneOutcome::evaluated
};

struct TuneOutcome {
  std::vector<EvaluatedCandidate> evaluated;
  std::vector<ParetoPoint> front;  ///< validated, non-dominated
  std::size_t baseline_index = 0;
  std::optional<std::size_t> selected_index;
  bool selected_dominates = false;
  std::size_t proposals = 0;
  std::size_t infeasible_skipped = 0;
  std::size_t duplicates_skipped = 0;
  std::size_t rounds = 0;
  /// Spearman rank correlation of (predicted, measured) cost over the
  /// validated candidates the surrogate scored before seeing.
  double spearman_rank = 0.0;
  std::size_t scored_pairs = 0;
  /// The raw (predicted, measured) pairs behind spearman_rank.
  std::vector<std::pair<double, double>> scored;

  const EvaluatedCandidate& baseline() const {
    return evaluated[baseline_index];
  }
  const EvaluatedCandidate* selected() const {
    return selected_index ? &evaluated[*selected_index] : nullptr;
  }
};

/// ISSUE-10 dominance gate: candidate accuracy >= baseline on both
/// channels, candidate feasible, and strictly lower predicted latency OR
/// resources no worse on every axis and strictly better on one.
bool dominates_baseline(const Validation& candidate,
                        const Validation& baseline) noexcept;

class Autotuner {
 public:
  /// `evaluator` must be a full (validating) evaluator over `space`.
  Autotuner(const SearchSpace& space, const Evaluator& evaluator,
            TuneConfig config = {});

  TuneOutcome run();

  const TuneConfig& config() const noexcept { return cfg_; }

 private:
  const SearchSpace& space_;
  const Evaluator& evaluator_;
  TuneConfig cfg_;
};

}  // namespace reads::autotune
