#include "autotune/evaluator.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "hls/qmodel.hpp"

namespace reads::autotune {

Evaluator::Evaluator(const SearchSpace& space, EvaluatorConfig config)
    : space_(space),
      cfg_(config),
      resource_model_(cfg_.device, cfg_.resource),
      latency_model_(cfg_.latency) {}

Evaluator::Evaluator(const SearchSpace& space, const nn::Model& reference,
                     std::vector<tensor::Tensor> frames,
                     EvaluatorConfig config)
    : space_(space),
      cfg_(config),
      resource_model_(cfg_.device, cfg_.resource),
      latency_model_(cfg_.latency),
      reference_(&reference),
      frames_(std::move(frames)) {
  if (frames_.empty()) {
    throw std::invalid_argument("Evaluator: no held-out frames");
  }
  reference_outputs_ = reference_->forward_batch(frames_);
}

CheapEval Evaluator::score_firmware(const hls::FirmwareModel& fw) const {
  CheapEval e;
  const auto res = resource_model_.estimate(fw);
  const auto lat = latency_model_.estimate(fw);
  e.latency_ms = lat.total_ms();
  e.total_cycles = lat.total_cycles;
  e.aluts = res.total_aluts;
  e.dsps = res.total_dsps;
  e.ram_blocks = res.total_ram_blocks;
  e.bram_bits = res.total_bram_bits;
  e.alut_utilization = res.alut_utilization();
  e.dsp_utilization = res.dsp_utilization();
  e.fits = res.fits();
  e.meets_deadline = e.latency_ms <= cfg_.deadline_ms;
  e.layer_cycles = lat.layers;
  for (const auto& layer : fw.layers) e.mults += layer.instantiated_mults;
  return e;
}

CheapEval Evaluator::cheap(const Candidate& candidate) const {
  return score_firmware(space_.skeleton(candidate));
}

Validation Evaluator::validate(const Candidate& candidate) const {
  if (!can_validate()) {
    throw std::logic_error(
        "Evaluator::validate: constructed cheap-only (no reference model)");
  }
  const hls::HlsConfig cfg = space_.materialize(candidate);
  const hls::QuantizedModel quantized(hls::compile(*reference_, cfg));

  Validation v;
  v.cheap = score_firmware(quantized.firmware());
  v.frames = frames_.size();

  hls::ForwardStats stats;
  const auto outs = quantized.forward_batch(frames_, &stats);
  v.saturations = stats.total_saturations();
  v.overflows = stats.total_overflows();

  // Outputs of shape (monitors, 2) get the paper's per-channel accuracy
  // (channel 0 = MI, channel 1 = RR); any other shape scores overall into
  // both accuracy fields.
  const auto& shape = reference_outputs_.front().shape();
  const bool two_channel = shape.size() == 2 && shape[1] == 2;
  double sum = 0.0;
  std::size_t n = 0;
  std::size_t close_mi = 0;
  std::size_t close_rr = 0;
  std::size_t n_mi = 0;
  std::size_t n_rr = 0;
  for (std::size_t f = 0; f < frames_.size(); ++f) {
    const auto& ref = reference_outputs_[f];
    const auto& q = outs[f];
    for (std::size_t i = 0; i < ref.numel(); ++i) {
      const double d = std::fabs(static_cast<double>(q[i]) -
                                 static_cast<double>(ref[i]));
      sum += d;
      ++n;
      v.max_diff = std::max(v.max_diff, d);
      const bool close = d <= cfg_.tolerance;
      if (!close) ++v.outliers;
      const bool is_rr = two_channel && (i % 2 == 1);
      if (is_rr) {
        ++n_rr;
        if (close) ++close_rr;
      } else {
        ++n_mi;
        if (close) ++close_mi;
      }
    }
  }
  v.mean_diff = n > 0 ? sum / static_cast<double>(n) : 0.0;
  v.accuracy_mi =
      n_mi > 0 ? static_cast<double>(close_mi) / static_cast<double>(n_mi)
               : 0.0;
  v.accuracy_rr = two_channel ? (n_rr > 0 ? static_cast<double>(close_rr) /
                                                static_cast<double>(n_rr)
                                          : 0.0)
                              : v.accuracy_mi;
  validations_.fetch_add(1, std::memory_order_relaxed);
  return v;
}

}  // namespace reads::autotune
