// Search space for the precision/reuse autotuner.
//
// A Candidate assigns one gene per *tunable* layer (Dense / Conv1D /
// folded BatchNorm — anything with multipliers and weights): the total
// fixed-point width W, an integer-bit delta relative to the profiled
// layer_based_config seed allocation, and the layer's reuse factor.
// Non-MAC layers (ReLU, pool, upsample, concat, sigmoid) inherit the gene
// of the nearest MAC ancestor so a group's activation path keeps one
// format — exactly the granularity layer_based_config tunes at.
//
// The space is anchored on a *baseline firmware* compiled from the seed
// config: baseline_candidate() materializes byte-identical to that config
// (tested), and skeleton() produces a FirmwareModel whose quant/reuse
// fields reflect a candidate without re-quantizing weights — the
// ResourceModel and LatencyModel read only geometry + specs + reuse, so
// cheap screening is exact while costing microseconds, not a compile.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "autotune/surrogate.hpp"
#include "hls/firmware.hpp"
#include "util/rng.hpp"

namespace reads::autotune {

/// One tunable layer's genome: total width, integer-bit delta applied on
/// top of the seed config's profiled allocation, and reuse factor.
struct LayerGene {
  int width = 16;
  int int_delta = 0;
  std::size_t reuse = 32;

  friend bool operator==(const LayerGene&, const LayerGene&) = default;
};

struct Candidate {
  std::map<std::string, LayerGene> genes;  ///< keyed by tunable layer name

  /// Canonical string key (deterministic: map order). Used for dedup and
  /// as the Pareto point identity.
  std::string key() const;

  friend bool operator==(const Candidate&, const Candidate&) = default;
};

struct SearchBounds {
  int min_width = 8;
  int max_width = 18;
  int min_int_delta = -1;
  int max_int_delta = 2;
  /// Reuse ladder mutations walk; candidates are additionally clamped to
  /// [1, mults_per_output] per layer at materialization, like hls::compile.
  std::vector<std::size_t> reuse_steps = {1,  2,  4,   8,   16,
                                          32, 64, 128, 256, 512};
};

class SearchSpace {
 public:
  /// `baseline` must be a compiled firmware (the layer_based_config seed
  /// point); it provides topology, geometry, seed quant specs, and seed
  /// reuse. Throws std::invalid_argument when it has no tunable layers.
  explicit SearchSpace(hls::FirmwareModel baseline, SearchBounds bounds = {});

  const hls::FirmwareModel& baseline_firmware() const noexcept {
    return base_;
  }
  const SearchBounds& bounds() const noexcept { return bounds_; }
  const std::vector<std::string>& tunable_layers() const noexcept {
    return tunable_;
  }

  /// The seed point: genes read back from the baseline firmware. Its
  /// materialization reproduces the baseline HlsConfig byte-for-byte.
  Candidate baseline_candidate() const;

  /// Clamp genes into bounds and fill any missing tunable layer from the
  /// baseline. Throws on a gene naming an unknown layer.
  Candidate clamped(Candidate candidate) const;

  /// Lower a candidate to a full HlsConfig (per-layer QuantConfig entries
  /// for every grouped layer + per-layer reuse overrides) ready for
  /// hls::compile.
  hls::HlsConfig materialize(const Candidate& candidate) const;

  /// Baseline firmware with quant specs, reuse, and instantiated_mults
  /// rewritten for `candidate`. weights_raw is left at the baseline's
  /// values (stale): the resource and latency models never read weights,
  /// so this is exact for cheap screening — do NOT execute a skeleton.
  hls::FirmwareModel skeleton(const Candidate& candidate) const;

  /// Hand-engineered features for the accuracy surrogate (rule4ml-style):
  /// MACs-weighted means and minima of fractional bits, quantization-step
  /// magnitudes 2^-frac, and integer-headroom terms. Layout documented in
  /// DESIGN.md §12.
  FeatureVec features(const Candidate& candidate) const;

  /// 1–3 gene tweaks (width +-1/2, int_delta +-1, reuse one ladder step),
  /// clamped; retries until the key changes (bounded attempts).
  Candidate mutate(const Candidate& parent, util::Xoshiro256& rng) const;

  /// Uniform per-gene crossover of two candidates, clamped.
  Candidate crossover(const Candidate& a, const Candidate& b,
                      util::Xoshiro256& rng) const;

  /// mults_per_output of a tunable layer (the hard reuse ceiling).
  std::size_t max_reuse(const std::string& layer) const;

 private:
  const hls::FirmwareLayer& tunable_layer(std::size_t ordinal) const {
    return base_.layers[tunable_index_[ordinal]];
  }
  LayerGene clamp_gene(std::size_t ordinal, LayerGene gene) const;

  hls::FirmwareModel base_;
  SearchBounds bounds_;
  std::vector<std::string> tunable_;          ///< tunable layer names
  std::vector<std::size_t> tunable_index_;    ///< -> base_.layers index
  std::map<std::string, std::size_t> ordinal_;  ///< name -> tunable ordinal
  /// Per base_.layers entry: owning tunable ordinal, or -1 (input / no MAC
  /// ancestor — keeps its seed spec untouched).
  std::vector<int> group_;
};

}  // namespace reads::autotune
