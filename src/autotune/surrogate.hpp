// Learned cost surrogate for the precision/reuse autotuner.
//
// rule4ml (PAPERS.md) shows that resource/latency prediction for hls4ml
// models is learnable from hand-engineered per-layer features. We need far
// less: resources and latency already have exact analytical models in
// src/hls/, so the only expensive quantity left is *quantized accuracy*,
// which requires a full compile + bit-exact batch. The Surrogate is a small
// ridge regression trained online on candidates the Evaluator has already
// validated; it predicts log(quantization error) from the candidate's
// feature vector so the tuner can rank a large proposal pool and validate
// only a shortlist.
//
// Thread safety: observe() and predict() may be called concurrently from
// ThreadPool workers (the tuner itself is sequential, but the TSan suite
// trains across the pool on purpose); all state is guarded by one mutex.
// The normal-equation solve is cached and only recomputed after new
// observations arrive.
#pragma once

#include <array>
#include <cstddef>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace reads::autotune {

/// Fixed-size feature vector (see SearchSpace::features for the layout).
inline constexpr std::size_t kFeatureCount = 10;
using FeatureVec = std::array<double, kFeatureCount>;

struct SurrogateConfig {
  /// Ridge penalty on the normal equations, scaled by the observation
  /// count so the effective prior stays constant as data accumulates.
  double ridge_lambda = 1e-4;
  /// predict() returns nullopt until this many observations are seen —
  /// an untrained surrogate must not silently rank candidates.
  std::size_t min_observations = 8;
};

class Surrogate {
 public:
  explicit Surrogate(SurrogateConfig config = {});

  /// Record one validated candidate: features plus the measured cost
  /// (quantization error, >= 0). Trains on log(cost + eps) so the model
  /// ranks across the orders of magnitude PTQ errors span.
  void observe(const FeatureVec& features, double cost);

  /// Predicted cost on the original (linear) scale, or nullopt while the
  /// surrogate is cold or the normal equations are singular.
  std::optional<double> predict(const FeatureVec& features) const;

  std::size_t observations() const;

  const SurrogateConfig& config() const noexcept { return cfg_; }

 private:
  /// Re-solve (XtX + lambda*n*I) w = Xty if observations arrived since the
  /// last solve. Caller holds mutex_.
  void refresh_locked() const;

  SurrogateConfig cfg_;
  mutable std::mutex mutex_;
  std::size_t count_ = 0;
  std::array<std::array<double, kFeatureCount>, kFeatureCount> xtx_{};
  std::array<double, kFeatureCount> xty_{};
  mutable std::array<double, kFeatureCount> weights_{};
  mutable bool dirty_ = false;
  mutable bool solved_ = false;
};

/// Spearman rank correlation of (predicted, measured) pairs with
/// average-rank tie handling. Returns 0 for fewer than 2 pairs or when
/// either side is constant. This is the surrogate-quality number
/// bench_autotune gates at >= 0.7.
double spearman(const std::vector<std::pair<double, double>>& pairs);

}  // namespace reads::autotune
