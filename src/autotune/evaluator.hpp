// Candidate evaluation: a microsecond-cheap analytical screen and the
// expensive ground-truth validation.
//
// cheap():    ResourceModel + LatencyModel on a SearchSpace::skeleton() —
//             exact (the models read only geometry/specs/reuse) without
//             re-quantizing a single weight. Used to discard candidates
//             that cannot fit the device or the deadline before anything
//             expensive runs.
// validate(): the real codesign loop — materialize -> hls::compile ->
//             bit-exact QuantizedModel -> forward_batch over held-out
//             frames (PR 6 SIMD kernels + ThreadPool) compared against the
//             cached float reference outputs. This is the cost the
//             surrogate learns to predict.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "autotune/space.hpp"
#include "hls/latency.hpp"
#include "hls/resource.hpp"
#include "nn/model.hpp"
#include "tensor/tensor.hpp"

namespace reads::autotune {

struct EvaluatorConfig {
  hls::DeviceSpec device = hls::DeviceSpec::arria10_sx660();
  hls::ResourceModelParams resource{};
  hls::LatencyModelParams latency{};
  double deadline_ms = 3.0;   ///< the paper's control-loop deadline
  double tolerance = 0.20;    ///< the paper's accuracy tolerance
};

/// Analytical screen of one candidate.
struct CheapEval {
  double latency_ms = 0.0;
  std::size_t total_cycles = 0;
  std::size_t aluts = 0;
  std::size_t dsps = 0;
  std::size_t ram_blocks = 0;
  std::size_t bram_bits = 0;
  std::size_t mults = 0;  ///< instantiated multipliers, all layers
  double alut_utilization = 0.0;
  double dsp_utilization = 0.0;
  bool fits = false;
  bool meets_deadline = false;
  /// Per-layer cycle breakdown (greedy reuse descent picks its target from
  /// this).
  std::vector<hls::LayerLatency> layer_cycles;

  bool feasible() const noexcept { return fits && meets_deadline; }
};

/// Ground-truth validation of one candidate.
struct Validation {
  CheapEval cheap;  ///< scored on the *compiled* firmware, not a skeleton
  double accuracy_mi = 0.0;
  double accuracy_rr = 0.0;
  double mean_diff = 0.0;  ///< mean |quant - float| over all outputs
  double max_diff = 0.0;
  std::size_t outliers = 0;
  std::size_t saturations = 0;
  std::size_t overflows = 0;
  std::size_t frames = 0;

  /// The surrogate's target cost.
  double quant_err() const noexcept { return mean_diff; }
};

class Evaluator {
 public:
  /// Cheap-only evaluator (no reference model): validate() throws. Used by
  /// bench_reuse_ablation, which only sweeps resources/latency.
  Evaluator(const SearchSpace& space, EvaluatorConfig config = {});

  /// Full evaluator. `frames` are already-standardized held-out inputs;
  /// the float reference outputs are computed once here and reused for
  /// every validation. `reference` must outlive the evaluator.
  Evaluator(const SearchSpace& space, const nn::Model& reference,
            std::vector<tensor::Tensor> frames, EvaluatorConfig config = {});

  CheapEval cheap(const Candidate& candidate) const;
  Validation validate(const Candidate& candidate) const;

  bool can_validate() const noexcept { return reference_ != nullptr; }
  std::size_t validations() const noexcept {
    return validations_.load(std::memory_order_relaxed);
  }
  const EvaluatorConfig& config() const noexcept { return cfg_; }
  const SearchSpace& space() const noexcept { return space_; }

  /// Score an already-compiled firmware with this evaluator's models and
  /// budget (also used by the Requalifier's pre-publication budget guard).
  CheapEval score_firmware(const hls::FirmwareModel& fw) const;

 private:
  const SearchSpace& space_;
  EvaluatorConfig cfg_;
  hls::ResourceModel resource_model_;
  hls::LatencyModel latency_model_;
  const nn::Model* reference_ = nullptr;
  std::vector<tensor::Tensor> frames_;
  std::vector<tensor::Tensor> reference_outputs_;
  mutable std::atomic<std::size_t> validations_{0};
};

}  // namespace reads::autotune
