#include "autotune/space.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace reads::autotune {

namespace {

int clamp_int_bits(int bits, int width) {
  return std::clamp(bits, 1, width);
}

}  // namespace

std::string Candidate::key() const {
  std::string out;
  for (const auto& [name, g] : genes) {
    out += name;
    out += ':';
    out += std::to_string(g.width);
    out += '/';
    out += std::to_string(g.int_delta);
    out += '/';
    out += std::to_string(g.reuse);
    out += ';';
  }
  return out;
}

SearchSpace::SearchSpace(hls::FirmwareModel baseline, SearchBounds bounds)
    : base_(std::move(baseline)), bounds_(std::move(bounds)) {
  if (bounds_.reuse_steps.empty()) {
    throw std::invalid_argument("SearchSpace: empty reuse ladder");
  }
  std::sort(bounds_.reuse_steps.begin(), bounds_.reuse_steps.end());
  group_.assign(base_.layers.size(), -1);
  for (std::size_t i = 0; i < base_.layers.size(); ++i) {
    const auto& l = base_.layers[i];
    if (l.has_weights() && l.mults_per_output > 0) {
      group_[i] = static_cast<int>(tunable_.size());
      ordinal_[l.name] = tunable_.size();
      tunable_.push_back(l.name);
      tunable_index_.push_back(i);
    } else if (!l.inputs.empty()) {
      // Elementwise/structural layer: ride the first input's group so the
      // whole activation path downstream of a MAC keeps one format.
      group_[i] = group_[l.inputs.front()];
    }
  }
  if (tunable_.empty()) {
    throw std::invalid_argument("SearchSpace: firmware has no tunable layers");
  }
}

Candidate SearchSpace::baseline_candidate() const {
  Candidate c;
  for (std::size_t t = 0; t < tunable_.size(); ++t) {
    const auto& name = tunable_[t];
    const auto seed = base_.config.quant.layer(name);
    LayerGene g;
    g.width = seed.activation.width;
    g.int_delta = 0;
    // The *compiled* reuse, not the requested one: compile clamps requests
    // to mults_per_output, and the gene must stay inside that same bound.
    g.reuse = tunable_layer(t).reuse;
    c.genes[name] = g;
  }
  return c;
}

LayerGene SearchSpace::clamp_gene(std::size_t ordinal, LayerGene gene) const {
  gene.width = std::clamp(gene.width, bounds_.min_width, bounds_.max_width);
  gene.int_delta =
      std::clamp(gene.int_delta, bounds_.min_int_delta, bounds_.max_int_delta);
  const std::size_t ceiling = tunable_layer(ordinal).mults_per_output;
  gene.reuse = std::clamp<std::size_t>(gene.reuse, 1, std::max<std::size_t>(
                                                          1, ceiling));
  return gene;
}

Candidate SearchSpace::clamped(Candidate candidate) const {
  for (const auto& [name, gene] : candidate.genes) {
    (void)gene;
    if (!ordinal_.contains(name)) {
      throw std::invalid_argument("SearchSpace: unknown tunable layer '" +
                                  name + "'");
    }
  }
  Candidate out;
  const Candidate seed = baseline_candidate();
  for (std::size_t t = 0; t < tunable_.size(); ++t) {
    const auto& name = tunable_[t];
    const auto it = candidate.genes.find(name);
    const LayerGene gene =
        it != candidate.genes.end() ? it->second : seed.genes.at(name);
    out.genes[name] = clamp_gene(t, gene);
  }
  return out;
}

hls::HlsConfig SearchSpace::materialize(const Candidate& candidate) const {
  hls::HlsConfig cfg = base_.config;
  for (std::size_t i = 0; i < base_.layers.size(); ++i) {
    const int g = group_[i];
    if (g < 0) continue;  // input / no MAC ancestor: keep the seed spec
    const auto& owner = tunable_[static_cast<std::size_t>(g)];
    const auto gene_it = candidate.genes.find(owner);
    if (gene_it == candidate.genes.end()) {
      throw std::invalid_argument("SearchSpace: candidate missing gene '" +
                                  owner + "'");
    }
    const LayerGene& gene = gene_it->second;
    const auto& name = base_.layers[i].name;
    const auto seed = base_.config.quant.layer(name);
    hls::LayerQuant lq;
    // int_delta shifts the profiled integer allocation only at the MAC
    // layer that owns the group; downstream elementwise layers keep their
    // own profiled integer bits at the new width.
    const bool is_owner =
        tunable_index_[static_cast<std::size_t>(g)] == i;
    const int delta = is_owner ? gene.int_delta : 0;
    lq.activation = hls::FixedSpec{
        gene.width, clamp_int_bits(seed.activation.int_bits + delta,
                                   gene.width)};
    if (is_owner) {
      lq.weight = hls::FixedSpec{
          gene.width, clamp_int_bits(seed.weight.int_bits, gene.width)};
      lq.bias = hls::FixedSpec{
          gene.width, clamp_int_bits(seed.bias.int_bits, gene.width)};
    } else {
      // layer_based_config assigns weight = bias = activation for layers
      // without parameters; mirror that so the seed point round-trips.
      lq.weight = lq.activation;
      lq.bias = lq.activation;
    }
    cfg.quant.per_layer[name] = lq;
  }
  for (const auto& [name, gene] : candidate.genes) {
    cfg.reuse.overrides[name] = gene.reuse;
  }
  return cfg;
}

hls::FirmwareModel SearchSpace::skeleton(const Candidate& candidate) const {
  hls::FirmwareModel fw = base_;
  fw.config = materialize(candidate);
  for (auto& layer : fw.layers) {
    layer.quant = fw.config.quant.layer(layer.name);
    if (layer.mults_per_output > 0) {
      const std::size_t requested = fw.config.reuse.requested(layer.name);
      layer.reuse =
          std::clamp<std::size_t>(requested, 1, layer.mults_per_output);
      layer.instantiated_mults =
          (layer.mults_per_output + layer.reuse - 1) / layer.reuse;
    }
  }
  fw.input_spec = fw.layers.front().quant.activation;
  fw.output_spec = fw.layers.back().quant.activation;
  return fw;
}

FeatureVec SearchSpace::features(const Candidate& candidate) const {
  FeatureVec f{};
  f[0] = 1.0;  // bias term
  double total_macs = 0.0;
  for (std::size_t t = 0; t < tunable_.size(); ++t) {
    total_macs += static_cast<double>(tunable_layer(t).total_macs());
  }
  if (total_macs <= 0.0) total_macs = 1.0;
  // The surrogate regresses log(quant_err). Measured error behaves like a
  // sum of per-layer contributions ~2^-frac_bits, which is a PLATEAU
  // surface: widening a layer whose contribution is already negligible
  // changes nothing. Log-sum-exp "smoothed minimum" features plateau the
  // same way, so candidates the hardware cannot distinguish also tie in
  // the prediction (anything else scrambles ranks within a plateau).
  std::vector<double> act_fracs;
  act_fracs.reserve(tunable_.size());
  double act_lse = 0.0;        // sum of 2^-act_frac, uniform weights
  double act_lse_share = 0.0;  // same, MACs-share weighted
  double w_lse = 0.0;          // sum of 2^-w_frac, uniform weights
  double min_w_frac = 1e9;
  const double layers = static_cast<double>(tunable_.size());
  for (std::size_t t = 0; t < tunable_.size(); ++t) {
    const auto& name = tunable_[t];
    const auto gene_it = candidate.genes.find(name);
    const LayerGene& gene = gene_it != candidate.genes.end()
                                ? gene_it->second
                                : baseline_candidate().genes.at(name);
    const auto seed = base_.config.quant.layer(name);
    const double share =
        static_cast<double>(tunable_layer(t).total_macs()) / total_macs;
    const int act_int =
        clamp_int_bits(seed.activation.int_bits + gene.int_delta, gene.width);
    const int w_int = clamp_int_bits(seed.weight.int_bits, gene.width);
    const double act_frac = static_cast<double>(gene.width - act_int);
    const double w_frac = static_cast<double>(gene.width - w_int);
    act_fracs.push_back(act_frac);
    min_w_frac = std::min(min_w_frac, w_frac);
    act_lse += std::exp2(-act_frac);
    act_lse_share += share * std::exp2(-act_frac);
    w_lse += std::exp2(-w_frac);
    f[7] += share * act_frac / 16.0;
    // Headroom terms are unweighted by MACs: one small layer losing an
    // integer bit can saturate the whole output path.
    f[8] += static_cast<double>(std::max(0, -gene.int_delta)) / layers;
    f[9] += static_cast<double>(std::max(0, gene.int_delta)) / (2.0 * layers);
  }
  std::sort(act_fracs.begin(), act_fracs.end());
  f[1] = -std::log2(std::max(act_lse, 1e-12)) / 16.0;
  f[2] = act_fracs.front() / 16.0;
  f[3] = -std::log2(std::max(w_lse, 1e-12)) / 16.0;
  f[4] = min_w_frac / 16.0;
  f[5] = -std::log2(std::max(act_lse_share, 1e-12)) / 16.0;
  // Second-smallest activation fraction: the log-sum-exp tail right after
  // the dominant (minimum-fraction) error source.
  f[6] = (act_fracs.size() > 1 ? act_fracs[1] : act_fracs.front()) / 16.0;
  return f;
}

Candidate SearchSpace::mutate(const Candidate& parent,
                              util::Xoshiro256& rng) const {
  const std::string parent_key = parent.key();
  for (int attempt = 0; attempt < 16; ++attempt) {
    Candidate child = parent;
    const std::size_t tweaks = 1 + rng.uniform_int(3);
    for (std::size_t k = 0; k < tweaks; ++k) {
      const std::size_t t = rng.uniform_int(tunable_.size());
      LayerGene& gene = child.genes[tunable_[t]];
      switch (rng.uniform_int(4)) {
        case 0: {
          const int step = 1 + static_cast<int>(rng.uniform_int(2));
          gene.width += rng.bernoulli(0.5) ? step : -step;
          break;
        }
        case 1:
          gene.int_delta += rng.bernoulli(0.5) ? 1 : -1;
          break;
        default: {
          // One step along the reuse ladder from the nearest rung.
          const auto& steps = bounds_.reuse_steps;
          std::size_t idx = 0;
          while (idx + 1 < steps.size() && steps[idx + 1] <= gene.reuse) {
            ++idx;
          }
          if (rng.bernoulli(0.5)) {
            if (idx + 1 < steps.size()) ++idx;
          } else {
            if (idx > 0) --idx;
          }
          gene.reuse = steps[idx];
          break;
        }
      }
      gene = clamp_gene(t, gene);
    }
    if (child.key() != parent_key) return child;
  }
  return parent;
}

Candidate SearchSpace::crossover(const Candidate& a, const Candidate& b,
                                 util::Xoshiro256& rng) const {
  Candidate child;
  for (std::size_t t = 0; t < tunable_.size(); ++t) {
    const auto& name = tunable_[t];
    const Candidate& pick = rng.bernoulli(0.5) ? a : b;
    const auto it = pick.genes.find(name);
    const auto other = (&pick == &a ? b : a).genes.find(name);
    LayerGene gene;
    if (it != pick.genes.end()) {
      gene = it->second;
    } else if (other != (&pick == &a ? b : a).genes.end()) {
      gene = other->second;
    } else {
      gene = baseline_candidate().genes.at(name);
    }
    child.genes[name] = clamp_gene(t, gene);
  }
  return child;
}

std::size_t SearchSpace::max_reuse(const std::string& layer) const {
  const auto it = ordinal_.find(layer);
  if (it == ordinal_.end()) {
    throw std::invalid_argument("SearchSpace: unknown tunable layer '" +
                                layer + "'");
  }
  return tunable_layer(it->second).mults_per_output;
}

}  // namespace reads::autotune
