#include "autotune/surrogate.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace reads::autotune {

namespace {

constexpr double kLogEps = 1e-9;

/// Average ranks (1-based) with ties sharing the mean of their positions.
std::vector<double> average_ranks(const std::vector<double>& values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return values[a] < values[b];
  });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // positions i..j (0-based) tie; their shared rank is the average of
    // the 1-based positions.
    const double rank = 0.5 * (static_cast<double>(i) +
                               static_cast<double>(j)) + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

Surrogate::Surrogate(SurrogateConfig config) : cfg_(config) {}

void Surrogate::observe(const FeatureVec& features, double cost) {
  const double y = std::log(std::max(cost, 0.0) + kLogEps);
  std::lock_guard lock(mutex_);
  for (std::size_t r = 0; r < kFeatureCount; ++r) {
    for (std::size_t c = 0; c < kFeatureCount; ++c) {
      xtx_[r][c] += features[r] * features[c];
    }
    xty_[r] += features[r] * y;
  }
  ++count_;
  dirty_ = true;
}

std::optional<double> Surrogate::predict(const FeatureVec& features) const {
  std::lock_guard lock(mutex_);
  if (count_ < cfg_.min_observations) return std::nullopt;
  refresh_locked();
  if (!solved_) return std::nullopt;
  double y = 0.0;
  for (std::size_t i = 0; i < kFeatureCount; ++i) {
    y += weights_[i] * features[i];
  }
  return std::exp(y) - kLogEps;
}

std::size_t Surrogate::observations() const {
  std::lock_guard lock(mutex_);
  return count_;
}

void Surrogate::refresh_locked() const {
  if (!dirty_) return;
  dirty_ = false;
  solved_ = false;

  // Dense Gaussian elimination with partial pivoting on the ridge-damped
  // normal equations. kFeatureCount is tiny, so O(K^3) is free.
  constexpr std::size_t k = kFeatureCount;
  std::array<std::array<double, k + 1>, k> a{};
  const double damp = cfg_.ridge_lambda * static_cast<double>(count_);
  for (std::size_t r = 0; r < k; ++r) {
    for (std::size_t c = 0; c < k; ++c) a[r][c] = xtx_[r][c];
    a[r][r] += damp;
    a[r][k] = xty_[r];
  }
  for (std::size_t col = 0; col < k; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < k; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    if (std::abs(a[pivot][col]) < 1e-12) return;  // singular; stay unsolved
    std::swap(a[col], a[pivot]);
    for (std::size_t r = 0; r < k; ++r) {
      if (r == col) continue;
      const double f = a[r][col] / a[col][col];
      for (std::size_t c = col; c <= k; ++c) a[r][c] -= f * a[col][c];
    }
  }
  for (std::size_t i = 0; i < k; ++i) weights_[i] = a[i][k] / a[i][i];
  solved_ = true;
}

double spearman(const std::vector<std::pair<double, double>>& pairs) {
  const std::size_t n = pairs.size();
  if (n < 2) return 0.0;
  std::vector<double> xs(n);
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = pairs[i].first;
    ys[i] = pairs[i].second;
  }
  const auto rx = average_ranks(xs);
  const auto ry = average_ranks(ys);
  double mx = 0.0;
  double my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += rx[i];
    my += ry[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = rx[i] - mx;
    const double dy = ry[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace reads::autotune
