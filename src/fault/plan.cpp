#include "fault/plan.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace reads::fault {

std::string_view to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kPacketCorrupt: return "packet_corrupt";
    case FaultKind::kPacketMalform: return "packet_malform";
    case FaultKind::kPacketDuplicate: return "packet_duplicate";
    case FaultKind::kPacketReorder: return "packet_reorder";
    case FaultKind::kHubOutage: return "hub_outage";
    case FaultKind::kReadingSaturate: return "reading_saturate";
    case FaultKind::kReadingNan: return "reading_nan";
    case FaultKind::kNnIpHang: return "nn_ip_hang";
    case FaultKind::kNnIpWedge: return "nn_ip_wedge";
    case FaultKind::kReplicaCrash: return "replica_crash";
  }
  return "?";
}

bool Plan::active(FaultKind kind, std::size_t site,
                  std::uint64_t tick) const noexcept {
  for (const auto& e : events_) {
    if (e.kind == kind && e.site == site && e.covers(tick)) return true;
  }
  return false;
}

bool Plan::any(FaultKind kind) const noexcept {
  return std::any_of(events_.begin(), events_.end(),
                     [&](const FaultEvent& e) { return e.kind == kind; });
}

std::uint64_t Plan::last_fault_tick() const noexcept {
  std::uint64_t last = 0;
  for (const auto& e : events_) {
    last = std::max(last, e.start_tick + e.duration_ticks - 1);
  }
  return last;
}

namespace {

/// Place `count` windows of `duration` ticks inside the campaign's middle
/// band [ticks/10, 8*ticks/10) so every scenario leaves a clean warm-up
/// before the first fault and a clean recovery tail after the last one —
/// the bench's bit-identity gates need both.
void place_windows(Plan& plan, FaultKind kind, util::Xoshiro256& rng,
                   const ScenarioParams& p, std::size_t count,
                   std::uint64_t duration, std::size_t sites) {
  const std::uint64_t lo = p.ticks / 10;
  const std::uint64_t hi = (8 * p.ticks) / 10;
  const std::uint64_t span = hi > lo + duration ? hi - lo - duration : 1;
  for (std::size_t i = 0; i < count; ++i) {
    FaultEvent e;
    e.kind = kind;
    e.site = sites > 0 ? static_cast<std::size_t>(
                             rng.uniform_int(static_cast<std::uint64_t>(sites)))
                       : 0;
    e.start_tick = lo + rng.uniform_int(span);
    e.duration_ticks = duration;
    plan.add(e);
  }
}

void build(Plan& plan, std::string_view name, const ScenarioParams& p,
           util::Xoshiro256& rng) {
  const std::uint64_t burst = std::max<std::uint64_t>(1, p.ticks / 12);
  if (name == "corrupt") {
    place_windows(plan, FaultKind::kPacketCorrupt, rng, p, 3, burst, p.hubs);
  } else if (name == "malform") {
    place_windows(plan, FaultKind::kPacketMalform, rng, p, 3, burst, p.hubs);
  } else if (name == "duplicate") {
    place_windows(plan, FaultKind::kPacketDuplicate, rng, p, 3, burst, p.hubs);
  } else if (name == "reorder") {
    place_windows(plan, FaultKind::kPacketReorder, rng, p, 2, burst, 1);
  } else if (name == "outage") {
    // One sustained blackout (multi-frame LKV + staleness) plus a short
    // blip on a different hub.
    place_windows(plan, FaultKind::kHubOutage, rng, p, 1,
                  std::max<std::uint64_t>(2, p.ticks / 6), p.hubs);
    place_windows(plan, FaultKind::kHubOutage, rng, p, 1, 2, p.hubs);
  } else if (name == "saturate") {
    place_windows(plan, FaultKind::kReadingSaturate, rng, p, 2, burst, p.hubs);
  } else if (name == "nan") {
    place_windows(plan, FaultKind::kReadingNan, rng, p, 2, burst, p.hubs);
  } else if (name == "ip_hang") {
    place_windows(plan, FaultKind::kNnIpHang, rng, p, 1, burst, 1);
  } else if (name == "ip_wedge") {
    place_windows(plan, FaultKind::kNnIpWedge, rng, p, 1,
                  std::max<std::uint64_t>(2, p.ticks / 20), 1);
  } else if (name == "crash") {
    // Crash bursts per replica. For kReplicaCrash the "tick" axis is the
    // replica's own backend-op counter, so windows land mid-campaign for
    // any offered load.
    const std::uint64_t lo = p.ticks / 10;
    const std::uint64_t hi = (8 * p.ticks) / 10;
    const std::uint64_t span = std::max<std::uint64_t>(1, hi - lo);
    for (std::size_t r = 0; r < p.replicas; ++r) {
      for (int i = 0; i < 2; ++i) {
        FaultEvent e;
        e.kind = FaultKind::kReplicaCrash;
        e.site = r;
        e.start_tick = lo + rng.uniform_int(span);
        e.duration_ticks = 4;
        plan.add(e);
      }
    }
  } else {
    throw std::invalid_argument("Plan::scenario: unknown scenario '" +
                                std::string(name) + "'");
  }
}

}  // namespace

Plan Plan::scenario(std::string_view name, const ScenarioParams& params) {
  Plan plan;
  if (name == "none") return plan;
  util::Xoshiro256 rng(util::derive_seed(params.seed, 0xFA17));
  if (name == "storm") {
    // Everything at once: the kitchen-sink resilience check. Sub-scenarios
    // draw from one stream in a fixed order, so the storm is as
    // reproducible as its parts.
    for (const char* part : {"corrupt", "malform", "duplicate", "reorder",
                             "outage", "saturate", "nan", "ip_hang"}) {
      build(plan, part, params, rng);
    }
    return plan;
  }
  build(plan, name, params, rng);
  return plan;
}

const std::vector<std::string>& Plan::scenario_names() {
  static const std::vector<std::string> kNames = {
      "none",     "corrupt", "malform", "duplicate", "reorder", "outage",
      "saturate", "nan",     "ip_hang", "ip_wedge",  "storm"};
  return kNames;
}

}  // namespace reads::fault
