#include "fault/injector.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "net/packet.hpp"
#include "util/rng.hpp"

namespace reads::fault {

Injector::Injector(Plan plan, std::uint64_t seed, std::size_t replicas)
    : plan_(std::move(plan)), seed_(seed), ops_(replicas) {}

std::uint64_t Injector::mix(FaultKind kind, std::size_t site,
                            std::uint64_t tick) const noexcept {
  // Stateless decision stream: one SplitMix64 step over a seed derived from
  // every coordinate. Same (seed, kind, site, tick) -> same bits, on any
  // thread, in any order.
  util::SplitMix64 sm(util::derive_seed(
      seed_, (static_cast<std::uint64_t>(kind) << 56) ^
                 (static_cast<std::uint64_t>(site) << 40) ^ tick));
  return sm.next();
}

void Injector::apply(std::uint32_t sequence,
                     std::vector<net::Delivery>& deliveries) {
  const std::uint64_t tick = sequence;
  current_tick_.store(tick, std::memory_order_relaxed);
  if (plan_.empty()) return;

  std::vector<net::Delivery> duplicates;
  for (auto& d : deliveries) {
    const std::size_t hub = d.packet.hub_id;
    if (plan_.active(FaultKind::kHubOutage, hub, tick)) {
      // The crate is dark: nothing reaches the wire.
      d.dropped = true;
      count(FaultKind::kHubOutage);
      continue;
    }
    if (d.dropped) continue;

    if (plan_.active(FaultKind::kReadingSaturate, hub, tick)) {
      // Pegged ADC: full-scale counts, faithfully checksummed by the hub —
      // only the assembler's plausibility gate can catch these.
      for (auto& r : d.packet.readings) r = 0xFFFFFFFFu;
      net::seal_packet(d.packet);
      count(FaultKind::kReadingSaturate);
    }
    if (plan_.active(FaultKind::kReadingNan, hub, tick)) {
      // NaN at the front-end encodes as zero counts (see encode_reading);
      // again valid on the wire, implausible in content.
      for (auto& r : d.packet.readings) {
        r = net::encode_reading(std::numeric_limits<double>::quiet_NaN());
      }
      net::seal_packet(d.packet);
      count(FaultKind::kReadingNan);
    }
    if (plan_.active(FaultKind::kPacketMalform, hub, tick)) {
      // Hub firmware bug: coherent checksum over a nonsense header.
      const std::uint64_t bits = mix(FaultKind::kPacketMalform, hub, tick);
      switch (bits % 3) {
        case 0: d.packet.first_monitor = static_cast<std::uint16_t>(bits >> 8);
                break;
        case 1: d.packet.hub_id = static_cast<std::uint8_t>(0x80u | hub);
                break;
        default: d.packet.readings.resize(
                     (bits >> 8) % d.packet.readings.size());
                break;
      }
      net::seal_packet(d.packet);
      count(FaultKind::kPacketMalform);
    }
    if (plan_.active(FaultKind::kPacketCorrupt, hub, tick)) {
      // Bit flip in flight, after the hub sealed the CRC: pick a bit from
      // the decision hash and leave the stale CRC in place.
      const std::uint64_t bits = mix(FaultKind::kPacketCorrupt, hub, tick);
      auto& word =
          d.packet.readings[(bits >> 8) % d.packet.readings.size()];
      word ^= 1u << (bits % 32);
      count(FaultKind::kPacketCorrupt);
    }
    if (plan_.active(FaultKind::kPacketDuplicate, hub, tick)) {
      duplicates.push_back(d);
      count(FaultKind::kPacketDuplicate);
    }
  }
  for (auto& d : duplicates) deliveries.push_back(std::move(d));

  if (plan_.active(FaultKind::kPacketReorder, 0, tick)) {
    // Deterministic Fisher-Yates from the decision hash; assembly must be
    // order-independent, so this only exercises that property.
    util::Xoshiro256 rng(mix(FaultKind::kPacketReorder, 0, tick));
    for (std::size_t i = deliveries.size(); i > 1; --i) {
      std::swap(deliveries[i - 1],
                deliveries[static_cast<std::size_t>(rng.uniform_int(i))]);
    }
    count(FaultKind::kPacketReorder);
  }
}

soc::NnIpCore::HangHook Injector::ip_hang_hook() {
  return [this](std::uint64_t /*run*/) {
    const std::uint64_t tick = current_tick_.load(std::memory_order_relaxed);
    if (tick != ip_tick_) {
      ip_tick_ = tick;
      ip_attempt_ = 0;
    }
    ++ip_attempt_;
    if (plan_.active(FaultKind::kNnIpWedge, 0, tick)) {
      count(FaultKind::kNnIpWedge);
      return true;
    }
    if (plan_.active(FaultKind::kNnIpHang, 0, tick) && ip_attempt_ == 1) {
      count(FaultKind::kNnIpHang);
      return true;
    }
    return false;
  };
}

bool Injector::crash_next(std::size_t site) {
  if (site >= ops_.size()) return false;
  const std::uint64_t op =
      ops_[site].fetch_add(1, std::memory_order_relaxed);
  if (plan_.active(FaultKind::kReplicaCrash, site, op)) {
    count(FaultKind::kReplicaCrash);
    return true;
  }
  return false;
}

std::uint64_t Injector::injected_total() const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : injected_) total += c.load(std::memory_order_relaxed);
  return total;
}

}  // namespace reads::fault
