// ChaosBackend: a serve::Backend decorator that injects replica crashes.
//
// Wraps a real backend; before every infer/infer_batch it asks the shared
// Injector whether this replica's next backend op is scheduled to crash,
// and throws if so — from the Replica's perspective indistinguishable from
// a worker process dying mid-request, which is exactly the fault the
// quarantine/redispatch machinery must absorb. When the op is clean, the
// wrapped backend runs untouched, so outputs stay bit-identical to an
// unfaulted run (the gateway's exactness audit depends on this).
#pragma once

#include <memory>
#include <stdexcept>
#include <utility>

#include "fault/injector.hpp"
#include "serve/backend.hpp"

namespace reads::fault {

class ChaosBackend final : public serve::Backend {
 public:
  ChaosBackend(std::unique_ptr<serve::Backend> inner, std::size_t site,
               std::shared_ptr<Injector> injector)
      : inner_(std::move(inner)), site_(site), injector_(std::move(injector)) {}

  std::string_view name() const noexcept override { return "chaos"; }

  serve::Tensor infer(const serve::Tensor& frame) override {
    maybe_crash();
    return inner_->infer(frame);
  }

  std::vector<serve::Tensor> infer_batch(
      std::span<const serve::Tensor> frames) override {
    maybe_crash();
    return inner_->infer_batch(frames);
  }

 private:
  void maybe_crash() {
    if (injector_->crash_next(site_)) {
      throw std::runtime_error("ChaosBackend: injected replica crash");
    }
  }

  std::unique_ptr<serve::Backend> inner_;
  std::size_t site_;
  std::shared_ptr<Injector> injector_;
};

}  // namespace reads::fault
