// Socket-level fault taxonomy and scheduling for the cluster chaos harness.
//
// NetPlan is the wire-layer sibling of fault::Plan: a deterministic
// schedule of NetFaultEvents, each activating one network fault kind at one
// site over a window of per-site I/O operations. A "site" is a connection
// in the order the io layer opened it inside one process (the router's
// replica legs come up first and in config order; a client process opens
// its traffic connection first), and the op axis is that site's running
// read/write-attempt counter — so the schedule is replayable bit-for-bit
// from (scenario, seed) alone, independent of wall-clock timing and thread
// interleaving, the same discipline fault::Plan established for the
// in-process pipeline.
//
// The plan is pure data; fault::NetInjector (net_chaos.hpp) turns active
// events into short writes, EAGAIN storms, torn connections, flipped
// bytes, refused connects, and slow-loris stalls through the cluster::IoTap
// seam. Nothing here touches the pipeline's RNG streams.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace reads::fault {

enum class NetFaultKind : std::uint8_t {
  kShortWrite,     ///< writes clamped to a handful of bytes (fragmenting)
  kEagainStorm,    ///< reads/writes spuriously would-block
  kConnReset,      ///< connection torn mid-envelope (both directions)
  kByteCorrupt,    ///< bit flip in transit (envelope CRC must catch it)
  kConnectRefuse,  ///< connect attempts to a matching site refused
  kStall,          ///< slow-loris: the peer makes no progress for a window
};

std::string_view to_string(NetFaultKind kind) noexcept;

struct NetFaultEvent {
  NetFaultKind kind = NetFaultKind::kShortWrite;
  /// Connection index in process-local open order (see header comment).
  std::size_t site = 0;
  /// First per-site I/O op affected (for kConnectRefuse: connect attempt
  /// index against the site's endpoint).
  std::uint64_t start_op = 0;
  /// Window length; every op in [start, start + duration) is affected.
  std::uint64_t duration_ops = 1;

  bool covers(std::uint64_t op) const noexcept {
    return op >= start_op && op < start_op + duration_ops;
  }
};

/// Knobs for NetPlan::scenario so one factory serves harnesses of any size.
struct NetScenarioParams {
  std::uint64_t seed = 7;
  /// Per-site op horizon the windows must fit in. Windows land in the
  /// middle band [ops/10, 8*ops/10): a fresh connection gets a clean
  /// ramp-up (a reconnected client can resubmit before being hit again)
  /// and every site ends the campaign clean.
  std::uint64_t ops = 400;
  /// Sites [0, sites) participate; later connections run untouched.
  std::size_t sites = 2;
};

class NetPlan {
 public:
  NetPlan() = default;

  void add(NetFaultEvent event) { events_.push_back(event); }

  /// Is `kind` active at `site` on per-site op `op`?
  bool active(NetFaultKind kind, std::size_t site,
              std::uint64_t op) const noexcept;

  /// Does the plan contain any event of `kind` at all?
  bool any(NetFaultKind kind) const noexcept;

  bool empty() const noexcept { return events_.empty(); }
  const std::vector<NetFaultEvent>& events() const noexcept {
    return events_;
  }

  /// Named, seeded campaigns. Names: net_none, torn, short_write, eagain,
  /// corrupt, refuse, stall, net_storm (everything at once). Throws
  /// std::invalid_argument on an unknown name.
  static NetPlan scenario(std::string_view name,
                          const NetScenarioParams& params);

  /// The names scenario() accepts, in campaign order.
  static const std::vector<std::string>& scenario_names();

 private:
  std::vector<NetFaultEvent> events_;
};

}  // namespace reads::fault
