#include "fault/net_chaos.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace reads::fault {

NetInjector::NetInjector(NetPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)), seed_(seed) {}

std::uint64_t NetInjector::mix(NetFaultKind kind, std::size_t site,
                               std::uint64_t axis) const noexcept {
  // Stateless decision stream: one SplitMix64 step over a seed derived
  // from every coordinate (the fault::Injector discipline).
  util::SplitMix64 sm(util::derive_seed(
      seed_, (static_cast<std::uint64_t>(kind) << 56) ^
                 (static_cast<std::uint64_t>(site) << 40) ^ axis));
  return sm.next();
}

void NetInjector::on_open(int fd, bool outbound) {
  (void)outbound;
  std::lock_guard lock(mutex_);
  SiteState st;
  st.site = next_site_++;
  fds_[fd] = st;
}

void NetInjector::on_close(int fd) {
  std::lock_guard lock(mutex_);
  fds_.erase(fd);
}

bool NetInjector::refuse_connect(const cluster::Endpoint& ep) {
  std::lock_guard lock(mutex_);
  auto [it, fresh] = connects_.try_emplace(ep.str());
  if (fresh) it->second.site = next_connect_site_++;
  const std::uint64_t attempt = it->second.attempts++;
  if (!enabled()) return false;
  if (plan_.active(NetFaultKind::kConnectRefuse, it->second.site, attempt)) {
    count(NetFaultKind::kConnectRefuse);
    return true;
  }
  return false;
}

std::ptrdiff_t NetInjector::gate_write(int fd, std::size_t len) {
  std::lock_guard lock(mutex_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) return static_cast<std::ptrdiff_t>(len);
  SiteState& st = it->second;
  const std::uint64_t op = st.write_ops++;
  if (!enabled()) return static_cast<std::ptrdiff_t>(len);
  const std::size_t site = st.site;
  if (plan_.active(NetFaultKind::kConnReset, site, op)) {
    if (!st.reset_armed && len > 1) {
      // First hit: let a short fragment out so the tear lands mid-envelope
      // on the peer's reader, the nastiest place a reset can land.
      st.reset_armed = true;
      return static_cast<std::ptrdiff_t>(
          1 + mix(NetFaultKind::kConnReset, site, op) % (len / 2 + 1));
    }
    st.reset_armed = false;
    count(NetFaultKind::kConnReset);
    return kTear;
  }
  if (plan_.active(NetFaultKind::kStall, site, op)) {
    count(NetFaultKind::kStall);
    return 0;
  }
  if (plan_.active(NetFaultKind::kEagainStorm, site, op) &&
      (mix(NetFaultKind::kEagainStorm, site, op) & 1) != 0) {
    count(NetFaultKind::kEagainStorm);
    return 0;
  }
  if (plan_.active(NetFaultKind::kShortWrite, site, op)) {
    count(NetFaultKind::kShortWrite);
    return static_cast<std::ptrdiff_t>(std::min(
        len, 1 + static_cast<std::size_t>(
                     mix(NetFaultKind::kShortWrite, site, op) % 7)));
  }
  return static_cast<std::ptrdiff_t>(len);
}

void NetInjector::mangle_write(int fd, std::uint8_t* data, std::size_t len) {
  std::lock_guard lock(mutex_);
  auto it = fds_.find(fd);
  if (it == fds_.end() || len == 0) return;
  SiteState& st = it->second;
  const std::uint64_t base = st.bytes_written;
  st.bytes_written += len;
  if (!enabled()) return;
  // Corruption windows ride the op axis (gate_write just advanced it); the
  // choice of victim byte and bit is a pure hash of (seed, site,
  // byte-offset), firing on a quarter of in-window writes.
  if (!plan_.active(NetFaultKind::kByteCorrupt, st.site, st.write_ops - 1)) {
    return;
  }
  const std::uint64_t h = mix(NetFaultKind::kByteCorrupt, st.site, base);
  if ((h & 3) != 0) return;
  data[(h >> 8) % len] ^= static_cast<std::uint8_t>(1u << ((h >> 32) & 7));
  count(NetFaultKind::kByteCorrupt);
}

bool NetInjector::gate_read(int fd) {
  std::lock_guard lock(mutex_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) return true;
  SiteState& st = it->second;
  const std::uint64_t op = st.read_ops++;
  if (!enabled()) return true;
  if (plan_.active(NetFaultKind::kStall, st.site, op)) {
    count(NetFaultKind::kStall);
    return false;
  }
  if (plan_.active(NetFaultKind::kEagainStorm, st.site, op) &&
      (mix(NetFaultKind::kEagainStorm, st.site, op ^ 0x9E37u) & 1) != 0) {
    count(NetFaultKind::kEagainStorm);
    return false;
  }
  return true;
}

void NetInjector::mangle_read(int fd, std::uint8_t* data, std::size_t len) {
  std::lock_guard lock(mutex_);
  auto it = fds_.find(fd);
  if (it == fds_.end() || len == 0) return;
  SiteState& st = it->second;
  const std::uint64_t base = st.bytes_read;
  st.bytes_read += len;
  if (!enabled()) return;
  if (!plan_.active(NetFaultKind::kByteCorrupt, st.site, st.read_ops - 1)) {
    return;
  }
  const std::uint64_t h =
      mix(NetFaultKind::kByteCorrupt, st.site, base ^ 0xC0FFEEull);
  if ((h & 3) != 1) return;  // decorrelated from the write-side flips
  data[(h >> 8) % len] ^= static_cast<std::uint8_t>(1u << ((h >> 32) & 7));
  count(NetFaultKind::kByteCorrupt);
}

std::uint64_t NetInjector::injected_total() const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : injected_) total += c.load(std::memory_order_relaxed);
  return total;
}

std::size_t NetInjector::sites_seen() const noexcept {
  std::lock_guard lock(mutex_);
  return next_site_;
}

}  // namespace reads::fault
