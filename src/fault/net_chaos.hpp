// fault::NetInjector — turns an active NetPlan event into socket mayhem.
//
// The injector implements cluster::IoTap, the one seam the io layer
// exposes (install with NetChaosGuard or cluster::set_io_tap). It owns no
// clocks and no mutable RNG streams for its decisions: every verdict is a
// pure hash of (seed, kind, site, op-or-byte-offset), so a chaos campaign
// is bit-reproducible regardless of thread interleaving — and, exactly as
// with PR 3's in-process Injector, the pipeline's own RNG streams are
// never touched, which is what lets the chaos bench compare a tormented
// run against the fault-free oracle value for value.
//
// Site identity is process-local connection open order (NetPlan header
// comment); connect-refusal sites are distinct-endpoint first-seen order
// with the attempt index as the op axis. Untracked fds (wake pipes,
// listeners, fds opened before installation) pass through untouched, as
// does everything while the injector is disable()d — benches flip that
// around admin/stats traffic so chaos only ever lands on the data path.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "cluster/io.hpp"
#include "fault/net_plan.hpp"

namespace reads::fault {

class NetInjector final : public cluster::IoTap {
 public:
  NetInjector(NetPlan plan, std::uint64_t seed);

  const NetPlan& plan() const noexcept { return plan_; }

  /// Disabled = fully transparent (still tracks opens/closes so site
  /// numbering stays stable across a pause).
  void enable(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // ---- cluster::IoTap ----------------------------------------------------
  void on_open(int fd, bool outbound) override;
  void on_close(int fd) override;
  bool refuse_connect(const cluster::Endpoint& ep) override;
  std::ptrdiff_t gate_write(int fd, std::size_t len) override;
  void mangle_write(int fd, std::uint8_t* data, std::size_t len) override;
  bool gate_read(int fd) override;
  void mangle_read(int fd, std::uint8_t* data, std::size_t len) override;

  /// Faults actually injected (not merely scheduled) per kind.
  std::uint64_t injected(NetFaultKind kind) const noexcept {
    return injected_[static_cast<std::size_t>(kind)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t injected_total() const noexcept;
  /// Connections seen so far (== the next site id to be assigned).
  std::size_t sites_seen() const noexcept;

 private:
  struct SiteState {
    std::size_t site = 0;
    std::uint64_t read_ops = 0;
    std::uint64_t write_ops = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
    bool reset_armed = false;  ///< kConnReset: short fragment, then tear
  };
  struct ConnectState {
    std::size_t site = 0;
    std::uint64_t attempts = 0;
  };

  std::uint64_t mix(NetFaultKind kind, std::size_t site,
                    std::uint64_t axis) const noexcept;
  void count(NetFaultKind kind) noexcept {
    injected_[static_cast<std::size_t>(kind)].fetch_add(
        1, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  NetPlan plan_;
  std::uint64_t seed_;
  std::atomic<bool> enabled_{true};
  mutable std::mutex mutex_;
  std::unordered_map<int, SiteState> fds_;
  std::unordered_map<std::string, ConnectState> connects_;
  std::size_t next_site_ = 0;
  std::size_t next_connect_site_ = 0;
  std::array<std::atomic<std::uint64_t>, 6> injected_{};
};

/// Scoped installation: the tap is live for the guard's lifetime and
/// guaranteed cleared before the injector can die.
class NetChaosGuard {
 public:
  explicit NetChaosGuard(NetInjector& injector) {
    cluster::set_io_tap(&injector);
  }
  ~NetChaosGuard() { cluster::set_io_tap(nullptr); }
  NetChaosGuard(const NetChaosGuard&) = delete;
  NetChaosGuard& operator=(const NetChaosGuard&) = delete;
};

}  // namespace reads::fault
