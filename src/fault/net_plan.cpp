#include "fault/net_plan.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace reads::fault {

std::string_view to_string(NetFaultKind kind) noexcept {
  switch (kind) {
    case NetFaultKind::kShortWrite: return "short_write";
    case NetFaultKind::kEagainStorm: return "eagain_storm";
    case NetFaultKind::kConnReset: return "conn_reset";
    case NetFaultKind::kByteCorrupt: return "byte_corrupt";
    case NetFaultKind::kConnectRefuse: return "connect_refuse";
    case NetFaultKind::kStall: return "stall";
  }
  return "?";
}

bool NetPlan::active(NetFaultKind kind, std::size_t site,
                     std::uint64_t op) const noexcept {
  for (const auto& e : events_) {
    if (e.kind == kind && e.site == site && e.covers(op)) return true;
  }
  return false;
}

bool NetPlan::any(NetFaultKind kind) const noexcept {
  return std::any_of(events_.begin(), events_.end(),
                     [&](const NetFaultEvent& e) { return e.kind == kind; });
}

namespace {

/// Place `count` windows of `duration` ops per site inside the middle band
/// [ops/10, 8*ops/10) — every participating site gets hit, every window
/// leaves a clean ramp before and a clean tail after (a torn connection's
/// replacement needs fault-free ops to resubmit through).
void place_windows(NetPlan& plan, NetFaultKind kind, util::Xoshiro256& rng,
                   const NetScenarioParams& p, std::size_t count,
                   std::uint64_t duration) {
  const std::uint64_t lo = p.ops / 10;
  const std::uint64_t hi = (8 * p.ops) / 10;
  const std::uint64_t span = hi > lo + duration ? hi - lo - duration : 1;
  for (std::size_t site = 0; site < p.sites; ++site) {
    for (std::size_t i = 0; i < count; ++i) {
      NetFaultEvent e;
      e.kind = kind;
      e.site = site;
      e.start_op = lo + rng.uniform_int(span);
      e.duration_ops = duration;
      plan.add(e);
    }
  }
}

void build(NetPlan& plan, std::string_view name, const NetScenarioParams& p,
           util::Xoshiro256& rng) {
  const std::uint64_t burst = std::max<std::uint64_t>(2, p.ops / 16);
  if (name == "torn") {
    // Two resets per site; each window is two ops — the injector lets a
    // short fragment out on the first and tears on the second, so the
    // reset lands mid-envelope on the peer's reader.
    place_windows(plan, NetFaultKind::kConnReset, rng, p, 2, 2);
  } else if (name == "short_write") {
    place_windows(plan, NetFaultKind::kShortWrite, rng, p, 2, burst * 2);
  } else if (name == "eagain") {
    place_windows(plan, NetFaultKind::kEagainStorm, rng, p, 2, burst);
  } else if (name == "corrupt") {
    // Wider than the other bursts: the injector only flips a quarter of
    // in-window writes, so narrow windows could fire zero flips.
    place_windows(plan, NetFaultKind::kByteCorrupt, rng, p, 2, burst * 4);
  } else if (name == "refuse") {
    // Refuse the first few connect attempts per site — exercises backoff
    // without making the endpoint permanently unreachable.
    for (std::size_t site = 0; site < p.sites; ++site) {
      plan.add(NetFaultEvent{NetFaultKind::kConnectRefuse, site, 0, 2});
    }
  } else if (name == "stall") {
    // One long stall per site: both directions frozen for the window, long
    // enough (in loop iterations) to trip a stall-timeout defense.
    place_windows(plan, NetFaultKind::kStall, rng, p, 1,
                  std::max<std::uint64_t>(8, p.ops / 4));
  } else {
    throw std::invalid_argument("NetPlan::scenario: unknown scenario '" +
                                std::string(name) + "'");
  }
}

}  // namespace

NetPlan NetPlan::scenario(std::string_view name,
                          const NetScenarioParams& params) {
  NetPlan plan;
  if (name == "net_none" || name == "none" || name.empty()) return plan;
  util::Xoshiro256 rng(util::derive_seed(params.seed, 0x5EA7));
  if (name == "net_storm") {
    // Everything at once, in a fixed order from one stream — the storm is
    // as reproducible as its parts.
    for (const char* part :
         {"torn", "short_write", "eagain", "corrupt", "stall"}) {
      build(plan, part, params, rng);
    }
    return plan;
  }
  build(plan, name, params, rng);
  return plan;
}

const std::vector<std::string>& NetPlan::scenario_names() {
  static const std::vector<std::string> kNames = {
      "net_none", "torn",   "short_write", "eagain",
      "corrupt",  "refuse", "stall",       "net_storm"};
  return kNames;
}

}  // namespace reads::fault
