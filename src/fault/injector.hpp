// fault::Injector — turns an active Plan event into an actual fault.
//
// The injector sits on the seams the pipeline already exposes: the
// FacilityLink delivery tap (packet faults), the NnIpCore hang hook (IP
// faults), and a throwing Backend wrapper (replica crashes, see
// chaos_backend.hpp). It owns no clocks and no mutable RNG streams for its
// decisions: every choice is a pure hash of (seed, kind, site, tick), so
// injection is bit-reproducible regardless of thread interleaving — replica
// workers may race, the faults they observe do not.
//
// Crucially, injection never perturbs the pipeline's own RNG streams (the
// machine model, hub jitter, OS jitter all keep their sequences), which is
// what lets bench_chaos compare a faulted run against the fault-free
// reference tick by tick.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "fault/plan.hpp"
#include "net/hub.hpp"
#include "soc/nn_ip.hpp"

namespace reads::fault {

class Injector {
 public:
  Injector(Plan plan, std::uint64_t seed, std::size_t replicas = 0);

  const Plan& plan() const noexcept { return plan_; }

  /// Delivery tap body: mutate one tick's hub deliveries per the plan.
  /// Install via FacilityLink::set_delivery_tap (or call directly in
  /// tests). Also advances the injector's notion of the current tick for
  /// the IP hook.
  void apply(std::uint32_t sequence, std::vector<net::Delivery>& deliveries);

  /// Hook for NnIpCore/ArriaSocSystem::set_ip_hang_hook. kNnIpHang wedges
  /// only the first attempt of each tick (the watchdog's reset-and-retry
  /// then succeeds); kNnIpWedge wedges every attempt (forcing the HPS float
  /// fallback).
  soc::NnIpCore::HangHook ip_hang_hook();

  /// Replica-crash decision for backend op on `site`; each call advances
  /// that site's op counter. Thread-safe: sites are independent atomics and
  /// the verdict is a pure function of (site, op index).
  bool crash_next(std::size_t site);

  /// Faults actually injected (not merely scheduled) per kind.
  std::uint64_t injected(FaultKind kind) const noexcept {
    return injected_[static_cast<std::size_t>(kind)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t injected_total() const noexcept;

 private:
  std::uint64_t mix(FaultKind kind, std::size_t site,
                    std::uint64_t tick) const noexcept;
  void count(FaultKind kind) noexcept {
    injected_[static_cast<std::size_t>(kind)].fetch_add(
        1, std::memory_order_relaxed);
  }

  Plan plan_;
  std::uint64_t seed_;
  std::atomic<std::uint64_t> current_tick_{0};
  /// IP-hook attempt tracking; only touched from the (single) SoC thread.
  std::uint64_t ip_tick_ = ~0ull;
  std::uint64_t ip_attempt_ = 0;
  /// Per-replica backend-op counters for the crash-fault tick axis.
  std::vector<std::atomic<std::uint64_t>> ops_;
  std::array<std::atomic<std::uint64_t>, 10> injected_{};
};

}  // namespace reads::fault
