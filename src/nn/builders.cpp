#include "nn/builders.hpp"

#include <memory>
#include <stdexcept>

#include "nn/layers/activations.hpp"
#include "nn/layers/batchnorm.hpp"
#include "nn/layers/concat.hpp"
#include "nn/layers/conv1d.hpp"
#include "nn/layers/dense.hpp"
#include "nn/layers/pool.hpp"
#include "nn/layers/upsample.hpp"

namespace reads::nn {

Model build_unet(const UNetConfig& cfg) {
  if (cfg.monitors % 4 != 0) {
    throw std::invalid_argument("build_unet: monitors must be divisible by 4");
  }
  Model m("blm_frame", {cfg.monitors, 1});
  std::string prev = "blm_frame";
  const auto conv_relu = [&](const std::string& name, std::size_t in_ch,
                             std::size_t out_ch) {
    m.add(name, std::make_unique<Conv1D>(in_ch, out_ch, cfg.kernel), {prev});
    m.add(name + "_relu", std::make_unique<ReLU>());
    prev = name + "_relu";
  };

  if (cfg.input_batchnorm) {
    m.add("bn_in", std::make_unique<BatchNorm1D>(1), {prev});
    prev = "bn_in";
  }

  conv_relu("enc1a", 1, cfg.c1);
  conv_relu("enc1b", cfg.c1, cfg.c1);  // skip source 1
  m.add("pool1", std::make_unique<MaxPool1D>(2), {prev});
  prev = "pool1";
  conv_relu("enc2a", cfg.c1, cfg.c2);
  conv_relu("enc2b", cfg.c2, cfg.c2);  // skip source 2
  m.add("pool2", std::make_unique<MaxPool1D>(2), {prev});
  prev = "pool2";
  conv_relu("bot_a", cfg.c2, cfg.c3);
  conv_relu("bot_b", cfg.c3, cfg.c3);
  m.add("up2", std::make_unique<UpSampling1D>(2), {prev});
  m.add("cat2", std::make_unique<Concatenate>(), {"up2", "enc2b_relu"});
  prev = "cat2";
  conv_relu("dec2a", cfg.c3 + cfg.c2, cfg.c2);
  conv_relu("dec2b", cfg.c2, cfg.c2);
  m.add("up1", std::make_unique<UpSampling1D>(2), {prev});
  m.add("cat1", std::make_unique<Concatenate>(), {"up1", "enc1b_relu"});
  prev = "cat1";
  conv_relu("dec1a", cfg.c2 + cfg.c1, cfg.c1);
  conv_relu("dec1b", cfg.c1, cfg.c1);
  m.add("head", std::make_unique<Dense>(cfg.c1, cfg.outputs_per_monitor),
        {prev});
  m.add("head_sigmoid", std::make_unique<Sigmoid>());
  return m;
}

Model build_mlp(const MlpConfig& cfg) {
  Model m("blm_frame", {1, cfg.inputs});
  m.add("dense1", std::make_unique<Dense>(cfg.inputs, cfg.hidden),
        {"blm_frame"});
  m.add("dense1_relu", std::make_unique<ReLU>());
  m.add("dense2", std::make_unique<Dense>(cfg.hidden, cfg.outputs));
  m.add("out_sigmoid", std::make_unique<Sigmoid>());
  return m;
}

std::size_t unet_param_count(const UNetConfig& c) {
  const std::size_t k = c.kernel;
  std::size_t p = 0;
  p += k * 1 * c.c1 + c.c1;
  p += k * c.c1 * c.c1 + c.c1;
  p += k * c.c1 * c.c2 + c.c2;
  p += k * c.c2 * c.c2 + c.c2;
  p += k * c.c2 * c.c3 + c.c3;
  p += k * c.c3 * c.c3 + c.c3;
  p += k * (c.c3 + c.c2) * c.c2 + c.c2;
  p += k * c.c2 * c.c2 + c.c2;
  p += k * (c.c2 + c.c1) * c.c1 + c.c1;
  p += k * c.c1 * c.c1 + c.c1;
  p += c.c1 * c.outputs_per_monitor + c.outputs_per_monitor;
  if (c.input_batchnorm) p += 2;
  return p;
}

}  // namespace reads::nn
