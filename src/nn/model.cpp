#include "nn/model.hpp"

#include <array>
#include <sstream>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace reads::nn {

GradStore::GradStore(const std::vector<Shape>& shapes) {
  grads_.reserve(shapes.size());
  for (const auto& s : shapes) grads_.emplace_back(s);
}

void GradStore::zero() {
  for (auto& g : grads_) g.zero();
}

void GradStore::add(const GradStore& other) {
  if (other.grads_.size() != grads_.size()) {
    throw std::invalid_argument("GradStore::add: layout mismatch");
  }
  for (std::size_t i = 0; i < grads_.size(); ++i) {
    grads_[i].add_scaled(other.grads_[i], 1.0f);
  }
}

void GradStore::scale(float s) {
  for (auto& g : grads_) g.scale(s);
}

Model::Model(std::string input_name, Shape input_shape) {
  Node input;
  input.name = std::move(input_name);
  input.shape = std::move(input_shape);
  nodes_.push_back(std::move(input));
}

std::size_t Model::node_id(const std::string& name) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return i;
  }
  throw std::invalid_argument("Model: no node named '" + name + "'");
}

std::size_t Model::add(std::string name, std::unique_ptr<Layer> layer,
                       const std::vector<std::string>& input_names) {
  if (!layer) throw std::invalid_argument("Model::add: null layer");
  if (input_names.size() != layer->arity()) {
    throw std::invalid_argument("Model::add: '" + name + "' expects " +
                                std::to_string(layer->arity()) + " inputs");
  }
  for (const auto& n : nodes_) {
    if (n.name == name) {
      throw std::invalid_argument("Model::add: duplicate node '" + name + "'");
    }
  }
  Node node;
  node.name = std::move(name);
  std::vector<Shape> in_shapes;
  for (const auto& in : input_names) {
    const auto id = node_id(in);
    node.inputs.push_back(id);
    in_shapes.push_back(nodes_[id].shape);
  }
  node.shape = layer->output_shape(in_shapes);
  node.layer = std::move(layer);
  nodes_.push_back(std::move(node));
  return nodes_.size() - 1;
}

std::size_t Model::add(std::string name, std::unique_ptr<Layer> layer) {
  return add(std::move(name), std::move(layer), {nodes_.back().name});
}

Activations Model::forward_all(const Tensor& input, bool training) const {
  Activations acts;
  forward_all_into(input, acts, training);
  return acts;
}

void Model::forward_all_into(const Tensor& input, Activations& acts,
                             bool training) const {
  if (input.shape() != nodes_.front().shape) {
    throw std::invalid_argument("Model::forward: input shape " +
                                input.shape_string() + " != expected");
  }
  acts.values.resize(nodes_.size());
  acts.values[0] = input;  // vector copy-assign reuses existing capacity
  // Fixed-size stack of input pointers: every layer here is unary or binary.
  std::array<const Tensor*, 4> ins{};
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    const std::size_t arity = node.inputs.size();
    if (arity > ins.size()) {
      throw std::logic_error("Model::forward: unsupported layer arity");
    }
    for (std::size_t j = 0; j < arity; ++j) {
      ins[j] = &acts.values[node.inputs[j]];
    }
    node.layer->forward_into({ins.data(), arity}, acts.values[i], training);
  }
}

Tensor Model::forward(const Tensor& input) const {
  thread_local Activations scratch;
  forward_all_into(input, scratch, /*training=*/false);
  return scratch.values.back();
}

std::vector<Tensor> Model::forward_batch(std::span<const Tensor> inputs,
                                         util::Exec exec) const {
  std::vector<Tensor> outputs(inputs.size());
  util::parallel_for(
      std::size_t{0}, inputs.size(),
      [&](std::size_t i) { outputs[i] = forward(inputs[i]); }, exec);
  return outputs;
}

void Model::backward(const Activations& acts, const Tensor& grad_output,
                     GradStore& store) const {
  if (acts.values.size() != nodes_.size()) {
    throw std::invalid_argument("Model::backward: stale activations");
  }
  std::vector<Tensor> node_grads(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    node_grads[i] = Tensor(nodes_[i].shape);
  }
  node_grads.back().add_scaled(grad_output, 1.0f);

  // Parameter tensors were laid out in node order; walk the same order.
  std::vector<std::size_t> param_offset(nodes_.size(), 0);
  {
    std::size_t off = 0;
    for (std::size_t i = 1; i < nodes_.size(); ++i) {
      param_offset[i] = off;
      off += nodes_[i].layer->params().size();
    }
  }

  for (std::size_t i = nodes_.size() - 1; i >= 1; --i) {
    const Node& node = nodes_[i];
    std::vector<const Tensor*> ins;
    std::vector<Tensor*> grad_ins;
    for (auto id : node.inputs) {
      ins.push_back(&acts.values[id]);
      grad_ins.push_back(&node_grads[id]);
    }
    std::vector<Tensor*> pgrads;
    const auto n_params = node.layer->params().size();
    for (std::size_t p = 0; p < n_params; ++p) {
      pgrads.push_back(&store.tensors()[param_offset[i] + p]);
    }
    node.layer->backward(ins, acts.values[i], node_grads[i], grad_ins, pgrads);
  }
}

void Model::update_running_stats(const Activations& acts) {
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    Node& node = nodes_[i];
    std::vector<const Tensor*> ins;
    for (auto id : node.inputs) ins.push_back(&acts.values[id]);
    node.layer->update_running_stats(ins);
  }
}

std::vector<Tensor*> Model::parameters() {
  std::vector<Tensor*> ps;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    for (auto* p : nodes_[i].layer->params()) ps.push_back(p);
  }
  return ps;
}

std::vector<const Tensor*> Model::parameters() const {
  auto ps = const_cast<Model*>(this)->parameters();
  return {ps.begin(), ps.end()};
}

std::vector<Shape> Model::parameter_shapes() const {
  std::vector<Shape> shapes;
  for (const auto* p : parameters()) shapes.push_back(p->shape());
  return shapes;
}

std::size_t Model::param_count() const {
  std::size_t n = 0;
  for (const auto* p : parameters()) n += p->numel();
  return n;
}

std::string Model::summary() const {
  std::ostringstream out;
  out << "node                 type          output        params\n";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    std::string type = i == 0 ? "Input" : std::string(n.layer->type());
    std::string shape = "(";
    for (std::size_t d = 0; d < n.shape.size(); ++d) {
      shape += std::to_string(n.shape[d]);
      if (d + 1 < n.shape.size()) shape += ", ";
    }
    shape += ")";
    const std::size_t params = i == 0 ? 0 : n.layer->param_count();
    out << n.name << std::string(n.name.size() < 21 ? 21 - n.name.size() : 1, ' ')
        << type << std::string(type.size() < 14 ? 14 - type.size() : 1, ' ')
        << shape << std::string(shape.size() < 14 ? 14 - shape.size() : 1, ' ')
        << params << '\n';
  }
  out << "total trainable parameters: " << param_count() << '\n';
  return out.str();
}

}  // namespace reads::nn
