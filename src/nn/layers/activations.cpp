#include "nn/layers/activations.hpp"

#include <cmath>
#include <stdexcept>

namespace reads::nn {

namespace {
Shape passthrough_shape(std::span<const Shape> inputs, const char* who) {
  if (inputs.size() != 1) {
    throw std::invalid_argument(std::string(who) + ": expected one input");
  }
  return inputs[0];
}
}  // namespace

Shape ReLU::output_shape(std::span<const Shape> inputs) const {
  return passthrough_shape(inputs, "ReLU");
}

void ReLU::forward_into(std::span<const Tensor* const> inputs, Tensor& out,
                        bool /*training*/) const {
  const Tensor& x = *inputs[0];
  out.resize(x.shape());
  for (std::size_t i = 0; i < x.numel(); ++i) {
    out[i] = x[i] > 0.0f ? x[i] : 0.0f;
  }
}

void ReLU::backward(std::span<const Tensor* const> inputs,
                    const Tensor& /*output*/, const Tensor& grad_output,
                    std::span<Tensor* const> grad_inputs,
                    std::span<Tensor* const> /*param_grads*/) const {
  const Tensor& x = *inputs[0];
  Tensor& gx = *grad_inputs[0];
  for (std::size_t i = 0; i < x.numel(); ++i) {
    if (x[i] > 0.0f) gx[i] += grad_output[i];
  }
}

Shape Sigmoid::output_shape(std::span<const Shape> inputs) const {
  return passthrough_shape(inputs, "Sigmoid");
}

void Sigmoid::forward_into(std::span<const Tensor* const> inputs, Tensor& out,
                           bool /*training*/) const {
  const Tensor& x = *inputs[0];
  out.resize(x.shape());
  for (std::size_t i = 0; i < x.numel(); ++i) {
    out[i] = 1.0f / (1.0f + std::exp(-x[i]));
  }
}

void Sigmoid::backward(std::span<const Tensor* const> /*inputs*/,
                       const Tensor& output, const Tensor& grad_output,
                       std::span<Tensor* const> grad_inputs,
                       std::span<Tensor* const> /*param_grads*/) const {
  Tensor& gx = *grad_inputs[0];
  for (std::size_t i = 0; i < output.numel(); ++i) {
    gx[i] += grad_output[i] * output[i] * (1.0f - output[i]);
  }
}

}  // namespace reads::nn
