// Elementwise activation layers. Sigmoid is the model head activation (the
// outputs are per-monitor MI/RR probabilities); ReLU follows every hidden
// convolution and dense layer.
#pragma once

#include "nn/layer.hpp"

namespace reads::nn {

class ReLU final : public Layer {
 public:
  std::string_view type() const noexcept override { return "ReLU"; }
  Shape output_shape(std::span<const Shape> inputs) const override;
  void forward_into(std::span<const Tensor* const> inputs, Tensor& out,
                    bool training) const override;
  void backward(std::span<const Tensor* const> inputs, const Tensor& output,
                const Tensor& grad_output,
                std::span<Tensor* const> grad_inputs,
                std::span<Tensor* const> param_grads) const override;
};

class Sigmoid final : public Layer {
 public:
  std::string_view type() const noexcept override { return "Sigmoid"; }
  Shape output_shape(std::span<const Shape> inputs) const override;
  void forward_into(std::span<const Tensor* const> inputs, Tensor& out,
                    bool training) const override;
  void backward(std::span<const Tensor* const> inputs, const Tensor& output,
                const Tensor& grad_output,
                std::span<Tensor* const> grad_inputs,
                std::span<Tensor* const> param_grads) const override;
};

}  // namespace reads::nn
