#include "nn/layers/batchnorm.hpp"

#include <cmath>
#include <stdexcept>

namespace reads::nn {

BatchNorm1D::BatchNorm1D(std::size_t channels, double momentum, double epsilon)
    : channels_(channels),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_({channels}),
      beta_({channels}),
      running_mean_({channels}),
      running_var_({channels}) {
  if (channels_ == 0) throw std::invalid_argument("BatchNorm1D: zero channels");
  gamma_.fill(1.0f);
  running_var_.fill(1.0f);
}

Shape BatchNorm1D::output_shape(std::span<const Shape> inputs) const {
  if (inputs.size() != 1 || inputs[0].size() != 2 ||
      inputs[0][1] != channels_) {
    throw std::invalid_argument("BatchNorm1D: expected (positions, " +
                                std::to_string(channels_) + ") input");
  }
  return inputs[0];
}

void BatchNorm1D::sample_stats(const Tensor& x, std::vector<double>& mean,
                               std::vector<double>& var) const {
  const std::size_t positions = x.dim(0);
  mean.assign(channels_, 0.0);
  var.assign(channels_, 0.0);
  for (std::size_t p = 0; p < positions; ++p) {
    const float* xp = x.data() + p * channels_;
    for (std::size_t c = 0; c < channels_; ++c) mean[c] += xp[c];
  }
  for (auto& m : mean) m /= static_cast<double>(positions);
  for (std::size_t p = 0; p < positions; ++p) {
    const float* xp = x.data() + p * channels_;
    for (std::size_t c = 0; c < channels_; ++c) {
      const double d = xp[c] - mean[c];
      var[c] += d * d;
    }
  }
  for (auto& v : var) v /= static_cast<double>(positions);
}

void BatchNorm1D::forward_into(std::span<const Tensor* const> inputs,
                               Tensor& out, bool training) const {
  const Tensor& x = *inputs[0];
  const std::size_t positions = x.dim(0);
  out.resize({positions, channels_});
  Tensor& y = out;
  std::vector<double> mean(channels_);
  std::vector<double> var(channels_);
  if (training && positions > 1) {
    sample_stats(x, mean, var);
  } else {
    for (std::size_t c = 0; c < channels_; ++c) {
      mean[c] = running_mean_[c];
      var[c] = running_var_[c];
    }
  }
  for (std::size_t c = 0; c < channels_; ++c) {
    const double inv = 1.0 / std::sqrt(var[c] + epsilon_);
    for (std::size_t p = 0; p < positions; ++p) {
      const double xn = (x[p * channels_ + c] - mean[c]) * inv;
      y[p * channels_ + c] =
          static_cast<float>(gamma_[c] * xn + beta_[c]);
    }
  }
}

void BatchNorm1D::backward(std::span<const Tensor* const> inputs,
                           const Tensor& /*output*/, const Tensor& grad_output,
                           std::span<Tensor* const> grad_inputs,
                           std::span<Tensor* const> param_grads) const {
  const Tensor& x = *inputs[0];
  Tensor& gx = *grad_inputs[0];
  Tensor& ggamma = *param_grads[0];
  Tensor& gbeta = *param_grads[1];
  const std::size_t positions = x.dim(0);
  const auto n = static_cast<double>(positions);

  std::vector<double> mean(channels_);
  std::vector<double> var(channels_);
  const bool batch_stats = positions > 1;
  if (batch_stats) {
    sample_stats(x, mean, var);
  } else {
    for (std::size_t c = 0; c < channels_; ++c) {
      mean[c] = running_mean_[c];
      var[c] = running_var_[c];
    }
  }

  for (std::size_t c = 0; c < channels_; ++c) {
    const double inv = 1.0 / std::sqrt(var[c] + epsilon_);
    double sum_gy = 0.0;
    double sum_gy_xn = 0.0;
    for (std::size_t p = 0; p < positions; ++p) {
      const double xn = (x[p * channels_ + c] - mean[c]) * inv;
      const double gy = grad_output[p * channels_ + c];
      sum_gy += gy;
      sum_gy_xn += gy * xn;
    }
    ggamma[c] += static_cast<float>(sum_gy_xn);
    gbeta[c] += static_cast<float>(sum_gy);
    const double g = gamma_[c];
    for (std::size_t p = 0; p < positions; ++p) {
      const double xn = (x[p * channels_ + c] - mean[c]) * inv;
      const double gy = grad_output[p * channels_ + c];
      double gxv = 0.0;
      if (batch_stats) {
        // Full normalization backward: statistics depend on x.
        gxv = g * inv * (gy - sum_gy / n - xn * sum_gy_xn / n);
      } else {
        // Running stats are constants w.r.t. x.
        gxv = g * inv * gy;
      }
      gx[p * channels_ + c] += static_cast<float>(gxv);
    }
  }
}

void BatchNorm1D::update_running_stats(std::span<const Tensor* const> inputs) {
  const Tensor& x = *inputs[0];
  if (x.dim(0) < 2) return;  // degenerate sample; nothing trustworthy to fold
  std::vector<double> mean(channels_);
  std::vector<double> var(channels_);
  sample_stats(x, mean, var);
  if (!stats_initialized_) {
    for (std::size_t c = 0; c < channels_; ++c) {
      running_mean_[c] = static_cast<float>(mean[c]);
      running_var_[c] = static_cast<float>(var[c]);
    }
    stats_initialized_ = true;
    return;
  }
  for (std::size_t c = 0; c < channels_; ++c) {
    running_mean_[c] = static_cast<float>(momentum_ * running_mean_[c] +
                                          (1.0 - momentum_) * mean[c]);
    running_var_[c] = static_cast<float>(momentum_ * running_var_[c] +
                                         (1.0 - momentum_) * var[c]);
  }
}

void BatchNorm1D::set_running_stats(const Tensor& mean, const Tensor& var) {
  if (mean.numel() != channels_ || var.numel() != channels_) {
    throw std::invalid_argument("BatchNorm1D::set_running_stats: size mismatch");
  }
  running_mean_ = mean;
  running_var_ = var;
  stats_initialized_ = true;
}

}  // namespace reads::nn
