// 1-D convolution with 'same' zero padding and stride 1, the building block
// of the paper's U-Net encoder/decoder. Weight layout is (out_ch, k, in_ch)
// so the innermost loop runs over the contiguous channel axis of both the
// activation and the kernel.
#pragma once

#include "nn/layer.hpp"

namespace reads::nn {

class Conv1D final : public Layer {
 public:
  Conv1D(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel_size);

  std::string_view type() const noexcept override { return "Conv1D"; }
  Shape output_shape(std::span<const Shape> inputs) const override;
  void forward_into(std::span<const Tensor* const> inputs, Tensor& out,
                    bool training) const override;
  void backward(std::span<const Tensor* const> inputs, const Tensor& output,
                const Tensor& grad_output,
                std::span<Tensor* const> grad_inputs,
                std::span<Tensor* const> param_grads) const override;
  std::vector<Tensor*> params() override { return {&weight_, &bias_}; }

  std::size_t in_channels() const noexcept { return in_ch_; }
  std::size_t out_channels() const noexcept { return out_ch_; }
  std::size_t kernel_size() const noexcept { return k_; }
  /// weight is (out_ch, k, in_ch); bias is (out_ch).
  const Tensor& weight() const noexcept { return weight_; }
  const Tensor& bias() const noexcept { return bias_; }
  Tensor& weight() noexcept { return weight_; }
  Tensor& bias() noexcept { return bias_; }

 private:
  std::size_t in_ch_;
  std::size_t out_ch_;
  std::size_t k_;
  Tensor weight_;
  Tensor bias_;
};

}  // namespace reads::nn
