#include "nn/layers/flatten.hpp"

#include <algorithm>
#include <stdexcept>

namespace reads::nn {

Shape Flatten::output_shape(std::span<const Shape> inputs) const {
  if (inputs.size() != 1 || inputs[0].size() != 2) {
    throw std::invalid_argument("Flatten: expected one rank-2 input");
  }
  return {1, inputs[0][0] * inputs[0][1]};
}

void Flatten::forward_into(std::span<const Tensor* const> inputs, Tensor& out,
                           bool /*training*/) const {
  const Tensor& x = *inputs[0];
  out.resize({1, x.numel()});
  std::copy(x.data(), x.data() + x.numel(), out.data());
}

void Flatten::backward(std::span<const Tensor* const> /*inputs*/,
                       const Tensor& /*output*/, const Tensor& grad_output,
                       std::span<Tensor* const> grad_inputs,
                       std::span<Tensor* const> /*param_grads*/) const {
  Tensor& gx = *grad_inputs[0];
  for (std::size_t i = 0; i < gx.numel(); ++i) gx[i] += grad_output[i];
}

}  // namespace reads::nn
