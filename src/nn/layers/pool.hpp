// MaxPool1D with non-overlapping windows (stride == pool size), as used
// between U-Net encoder levels (260 -> 130 -> 65).
#pragma once

#include "nn/layer.hpp"

namespace reads::nn {

class MaxPool1D final : public Layer {
 public:
  explicit MaxPool1D(std::size_t pool_size = 2);

  std::string_view type() const noexcept override { return "MaxPool1D"; }
  Shape output_shape(std::span<const Shape> inputs) const override;
  void forward_into(std::span<const Tensor* const> inputs, Tensor& out,
                    bool training) const override;
  void backward(std::span<const Tensor* const> inputs, const Tensor& output,
                const Tensor& grad_output,
                std::span<Tensor* const> grad_inputs,
                std::span<Tensor* const> param_grads) const override;

  std::size_t pool_size() const noexcept { return pool_; }

 private:
  std::size_t pool_;
};

}  // namespace reads::nn
