// UpSampling1D: nearest-neighbour repetition along the position axis, the
// decoder-side counterpart of MaxPool1D (65 -> 130 -> 260).
#pragma once

#include "nn/layer.hpp"

namespace reads::nn {

class UpSampling1D final : public Layer {
 public:
  explicit UpSampling1D(std::size_t factor = 2);

  std::string_view type() const noexcept override { return "UpSampling1D"; }
  Shape output_shape(std::span<const Shape> inputs) const override;
  void forward_into(std::span<const Tensor* const> inputs, Tensor& out,
                    bool training) const override;
  void backward(std::span<const Tensor* const> inputs, const Tensor& output,
                const Tensor& grad_output,
                std::span<Tensor* const> grad_inputs,
                std::span<Tensor* const> param_grads) const override;

  std::size_t factor() const noexcept { return factor_; }

 private:
  std::size_t factor_;
};

}  // namespace reads::nn
