// BatchNorm1D (per-channel affine normalization).
//
// The paper first trained the U-Net on raw BLM magnitudes (105k–120k) with a
// BatchNorm layer doing the standardization inside the model, and found the
// resulting dynamic ranges hostile to 16-bit quantization; standardizing the
// data *before* training fixed it. This layer exists to reproduce that
// ablation (`bench_standardization`).
//
// Training-time statistics are computed over the position axis of each
// sample (the trainer feeds samples individually; for (positions, channels)
// activations this is instance-style normalization, which plays the same
// "standardize inside the model" role). Running statistics for inference are
// folded in sequentially via update_running_stats().
#pragma once

#include "nn/layer.hpp"

namespace reads::nn {

class BatchNorm1D final : public Layer {
 public:
  explicit BatchNorm1D(std::size_t channels, double momentum = 0.99,
                       double epsilon = 1e-3);

  std::string_view type() const noexcept override { return "BatchNorm1D"; }
  Shape output_shape(std::span<const Shape> inputs) const override;
  void forward_into(std::span<const Tensor* const> inputs, Tensor& out,
                    bool training) const override;
  void backward(std::span<const Tensor* const> inputs, const Tensor& output,
                const Tensor& grad_output,
                std::span<Tensor* const> grad_inputs,
                std::span<Tensor* const> param_grads) const override;
  std::vector<Tensor*> params() override { return {&gamma_, &beta_}; }
  void update_running_stats(std::span<const Tensor* const> inputs) override;

  std::size_t channels() const noexcept { return channels_; }
  const Tensor& running_mean() const noexcept { return running_mean_; }
  const Tensor& running_var() const noexcept { return running_var_; }
  const Tensor& gamma() const noexcept { return gamma_; }
  const Tensor& beta() const noexcept { return beta_; }
  double epsilon() const noexcept { return epsilon_; }

  /// Directly seed the running statistics (used when folding an external
  /// Standardizer into the model for deployment).
  void set_running_stats(const Tensor& mean, const Tensor& var);

 private:
  void sample_stats(const Tensor& x, std::vector<double>& mean,
                    std::vector<double>& var) const;

  std::size_t channels_;
  double momentum_;
  double epsilon_;
  Tensor gamma_;
  Tensor beta_;
  Tensor running_mean_;
  Tensor running_var_;
  bool stats_initialized_ = false;
};

}  // namespace reads::nn
