#include "nn/layers/dense.hpp"

#include <stdexcept>

#include "nn/kernels.hpp"

namespace reads::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features)
    : in_(in_features),
      out_(out_features),
      weight_({out_features, in_features}),
      bias_({out_features}) {
  if (in_ == 0 || out_ == 0) throw std::invalid_argument("Dense: zero size");
}

Shape Dense::output_shape(std::span<const Shape> inputs) const {
  if (inputs.size() != 1 || inputs[0].size() != 2 || inputs[0][1] != in_) {
    throw std::invalid_argument("Dense: expected (positions, " +
                                std::to_string(in_) + ") input");
  }
  return {inputs[0][0], out_};
}

void Dense::forward_into(std::span<const Tensor* const> inputs, Tensor& out,
                         bool /*training*/) const {
  const Tensor& x = *inputs[0];
  const std::size_t positions = x.dim(0);
  out.resize({positions, out_});
  kernels::dense_forward(x.data(), weight_.data(), bias_.data(), out.data(),
                         positions, in_, out_);
}

void Dense::backward(std::span<const Tensor* const> inputs,
                     const Tensor& /*output*/, const Tensor& grad_output,
                     std::span<Tensor* const> grad_inputs,
                     std::span<Tensor* const> param_grads) const {
  const Tensor& x = *inputs[0];
  Tensor& gx = *grad_inputs[0];
  Tensor& gw = *param_grads[0];
  Tensor& gb = *param_grads[1];
  const std::size_t positions = x.dim(0);
  const float* w = weight_.data();
  for (std::size_t p = 0; p < positions; ++p) {
    const float* xp = x.data() + p * in_;
    const float* gyp = grad_output.data() + p * out_;
    float* gxp = gx.data() + p * in_;
    for (std::size_t o = 0; o < out_; ++o) {
      const float gy = gyp[o];
      if (gy == 0.0f) continue;
      const float* wo = w + o * in_;
      float* gwo = gw.data() + o * in_;
      for (std::size_t i = 0; i < in_; ++i) {
        gxp[i] += gy * wo[i];
        gwo[i] += gy * xp[i];
      }
      gb[o] += gy;
    }
  }
}

}  // namespace reads::nn
