#include "nn/layers/conv1d.hpp"

#include <stdexcept>

#include "nn/kernels.hpp"

namespace reads::nn {

Conv1D::Conv1D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel_size)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      k_(kernel_size),
      weight_({out_channels, kernel_size, in_channels}),
      bias_({out_channels}) {
  if (in_ch_ == 0 || out_ch_ == 0 || k_ == 0) {
    throw std::invalid_argument("Conv1D: zero size");
  }
  if (k_ % 2 == 0) {
    throw std::invalid_argument("Conv1D: 'same' padding requires odd kernel");
  }
}

Shape Conv1D::output_shape(std::span<const Shape> inputs) const {
  if (inputs.size() != 1 || inputs[0].size() != 2 || inputs[0][1] != in_ch_) {
    throw std::invalid_argument("Conv1D: expected (positions, " +
                                std::to_string(in_ch_) + ") input");
  }
  return {inputs[0][0], out_ch_};
}

void Conv1D::forward_into(std::span<const Tensor* const> inputs, Tensor& out,
                          bool /*training*/) const {
  const Tensor& x = *inputs[0];
  const std::size_t positions = x.dim(0);
  out.resize({positions, out_ch_});
  kernels::conv1d_forward(x.data(), weight_.data(), bias_.data(), out.data(),
                          positions, in_ch_, out_ch_, k_);
}

void Conv1D::backward(std::span<const Tensor* const> inputs,
                      const Tensor& /*output*/, const Tensor& grad_output,
                      std::span<Tensor* const> grad_inputs,
                      std::span<Tensor* const> param_grads) const {
  const Tensor& x = *inputs[0];
  Tensor& gx = *grad_inputs[0];
  Tensor& gw = *param_grads[0];
  Tensor& gb = *param_grads[1];
  const std::size_t positions = x.dim(0);
  const std::ptrdiff_t pad = static_cast<std::ptrdiff_t>(k_ / 2);
  const float* w = weight_.data();
  for (std::size_t p = 0; p < positions; ++p) {
    const float* gyp = grad_output.data() + p * out_ch_;
    for (std::size_t o = 0; o < out_ch_; ++o) gb[o] += gyp[o];
    for (std::size_t dk = 0; dk < k_; ++dk) {
      const std::ptrdiff_t q = static_cast<std::ptrdiff_t>(p + dk) - pad;
      if (q < 0 || q >= static_cast<std::ptrdiff_t>(positions)) continue;
      const float* xq = x.data() + static_cast<std::size_t>(q) * in_ch_;
      float* gxq = gx.data() + static_cast<std::size_t>(q) * in_ch_;
      for (std::size_t o = 0; o < out_ch_; ++o) {
        const float gy = gyp[o];
        if (gy == 0.0f) continue;
        const float* wk = w + (o * k_ + dk) * in_ch_;
        float* gwk = gw.data() + (o * k_ + dk) * in_ch_;
        for (std::size_t i = 0; i < in_ch_; ++i) {
          gxq[i] += gy * wk[i];
          gwk[i] += gy * xq[i];
        }
      }
    }
  }
}

}  // namespace reads::nn
