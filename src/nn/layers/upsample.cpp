#include "nn/layers/upsample.hpp"

#include <stdexcept>

namespace reads::nn {

UpSampling1D::UpSampling1D(std::size_t factor) : factor_(factor) {
  if (factor_ < 1) throw std::invalid_argument("UpSampling1D: factor < 1");
}

Shape UpSampling1D::output_shape(std::span<const Shape> inputs) const {
  if (inputs.size() != 1 || inputs[0].size() != 2) {
    throw std::invalid_argument("UpSampling1D: expected one rank-2 input");
  }
  return {inputs[0][0] * factor_, inputs[0][1]};
}

void UpSampling1D::forward_into(std::span<const Tensor* const> inputs,
                                Tensor& out, bool /*training*/) const {
  const Tensor& x = *inputs[0];
  const std::size_t in_pos = x.dim(0);
  const std::size_t ch = x.dim(1);
  out.resize({in_pos * factor_, ch});
  Tensor& y = out;
  for (std::size_t p = 0; p < in_pos; ++p) {
    const float* xp = x.data() + p * ch;
    for (std::size_t d = 0; d < factor_; ++d) {
      float* yp = y.data() + (p * factor_ + d) * ch;
      for (std::size_t c = 0; c < ch; ++c) yp[c] = xp[c];
    }
  }
}

void UpSampling1D::backward(std::span<const Tensor* const> inputs,
                            const Tensor& /*output*/,
                            const Tensor& grad_output,
                            std::span<Tensor* const> grad_inputs,
                            std::span<Tensor* const> /*param_grads*/) const {
  const Tensor& x = *inputs[0];
  Tensor& gx = *grad_inputs[0];
  const std::size_t in_pos = x.dim(0);
  const std::size_t ch = x.dim(1);
  for (std::size_t p = 0; p < in_pos; ++p) {
    float* gxp = gx.data() + p * ch;
    for (std::size_t d = 0; d < factor_; ++d) {
      const float* gyp = grad_output.data() + (p * factor_ + d) * ch;
      for (std::size_t c = 0; c < ch; ++c) gxp[c] += gyp[c];
    }
  }
}

}  // namespace reads::nn
