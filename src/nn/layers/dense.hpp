// Dense (fully connected) layer with Keras semantics: it transforms the
// channel (last) axis and is applied independently at every position. The
// U-Net's classification head is exactly this — a Dense(2) applied at each
// of the 260 monitor positions, which is why the paper quotes a
// "Dense/Sigmoid reuse factor" of 260.
#pragma once

#include "nn/layer.hpp"

namespace reads::nn {

class Dense final : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features);

  std::string_view type() const noexcept override { return "Dense"; }
  Shape output_shape(std::span<const Shape> inputs) const override;
  void forward_into(std::span<const Tensor* const> inputs, Tensor& out,
                    bool training) const override;
  void backward(std::span<const Tensor* const> inputs, const Tensor& output,
                const Tensor& grad_output,
                std::span<Tensor* const> grad_inputs,
                std::span<Tensor* const> param_grads) const override;
  std::vector<Tensor*> params() override { return {&weight_, &bias_}; }

  std::size_t in_features() const noexcept { return in_; }
  std::size_t out_features() const noexcept { return out_; }
  /// weight is (out, in); bias is (out).
  const Tensor& weight() const noexcept { return weight_; }
  const Tensor& bias() const noexcept { return bias_; }
  Tensor& weight() noexcept { return weight_; }
  Tensor& bias() noexcept { return bias_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Tensor weight_;
  Tensor bias_;
};

}  // namespace reads::nn
