#include "nn/layers/concat.hpp"

#include <stdexcept>

namespace reads::nn {

Shape Concatenate::output_shape(std::span<const Shape> inputs) const {
  if (inputs.size() != 2 || inputs[0].size() != 2 || inputs[1].size() != 2) {
    throw std::invalid_argument("Concatenate: expected two rank-2 inputs");
  }
  if (inputs[0][0] != inputs[1][0]) {
    throw std::invalid_argument("Concatenate: position counts differ");
  }
  return {inputs[0][0], inputs[0][1] + inputs[1][1]};
}

void Concatenate::forward_into(std::span<const Tensor* const> inputs,
                               Tensor& out, bool /*training*/) const {
  const Tensor& a = *inputs[0];
  const Tensor& b = *inputs[1];
  const std::size_t positions = a.dim(0);
  const std::size_t ca = a.dim(1);
  const std::size_t cb = b.dim(1);
  out.resize({positions, ca + cb});
  Tensor& y = out;
  for (std::size_t p = 0; p < positions; ++p) {
    float* yp = y.data() + p * (ca + cb);
    const float* ap = a.data() + p * ca;
    const float* bp = b.data() + p * cb;
    for (std::size_t c = 0; c < ca; ++c) yp[c] = ap[c];
    for (std::size_t c = 0; c < cb; ++c) yp[ca + c] = bp[c];
  }
}

void Concatenate::backward(std::span<const Tensor* const> inputs,
                           const Tensor& /*output*/, const Tensor& grad_output,
                           std::span<Tensor* const> grad_inputs,
                           std::span<Tensor* const> /*param_grads*/) const {
  const std::size_t positions = inputs[0]->dim(0);
  const std::size_t ca = inputs[0]->dim(1);
  const std::size_t cb = inputs[1]->dim(1);
  Tensor& ga = *grad_inputs[0];
  Tensor& gb = *grad_inputs[1];
  for (std::size_t p = 0; p < positions; ++p) {
    const float* gyp = grad_output.data() + p * (ca + cb);
    float* gap = ga.data() + p * ca;
    float* gbp = gb.data() + p * cb;
    for (std::size_t c = 0; c < ca; ++c) gap[c] += gyp[c];
    for (std::size_t c = 0; c < cb; ++c) gbp[c] += gyp[ca + c];
  }
}

}  // namespace reads::nn
