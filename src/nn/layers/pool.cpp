#include "nn/layers/pool.hpp"

#include <stdexcept>

namespace reads::nn {

MaxPool1D::MaxPool1D(std::size_t pool_size) : pool_(pool_size) {
  if (pool_ < 1) throw std::invalid_argument("MaxPool1D: pool size < 1");
}

Shape MaxPool1D::output_shape(std::span<const Shape> inputs) const {
  if (inputs.size() != 1 || inputs[0].size() != 2) {
    throw std::invalid_argument("MaxPool1D: expected one rank-2 input");
  }
  if (inputs[0][0] % pool_ != 0) {
    throw std::invalid_argument("MaxPool1D: positions not divisible by pool");
  }
  return {inputs[0][0] / pool_, inputs[0][1]};
}

void MaxPool1D::forward_into(std::span<const Tensor* const> inputs,
                             Tensor& out, bool /*training*/) const {
  const Tensor& x = *inputs[0];
  const std::size_t out_pos = x.dim(0) / pool_;
  const std::size_t ch = x.dim(1);
  out.resize({out_pos, ch});
  Tensor& y = out;
  for (std::size_t p = 0; p < out_pos; ++p) {
    float* yp = y.data() + p * ch;
    const float* x0 = x.data() + p * pool_ * ch;
    for (std::size_t c = 0; c < ch; ++c) yp[c] = x0[c];
    for (std::size_t d = 1; d < pool_; ++d) {
      const float* xd = x0 + d * ch;
      for (std::size_t c = 0; c < ch; ++c) {
        if (xd[c] > yp[c]) yp[c] = xd[c];
      }
    }
  }
}

void MaxPool1D::backward(std::span<const Tensor* const> inputs,
                         const Tensor& output, const Tensor& grad_output,
                         std::span<Tensor* const> grad_inputs,
                         std::span<Tensor* const> /*param_grads*/) const {
  const Tensor& x = *inputs[0];
  Tensor& gx = *grad_inputs[0];
  const std::size_t out_pos = output.dim(0);
  const std::size_t ch = output.dim(1);
  for (std::size_t p = 0; p < out_pos; ++p) {
    const float* yp = output.data() + p * ch;
    const float* gyp = grad_output.data() + p * ch;
    for (std::size_t c = 0; c < ch; ++c) {
      // Route the gradient to the first element of the window that attained
      // the max (ties broken toward the earliest position, matching the
      // forward scan order).
      for (std::size_t d = 0; d < pool_; ++d) {
        const std::size_t q = p * pool_ + d;
        if (x[q * ch + c] == yp[c]) {
          gx[q * ch + c] += gyp[c];
          break;
        }
      }
    }
  }
}

}  // namespace reads::nn
