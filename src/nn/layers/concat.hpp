// Concatenate along the channel axis — the U-Net skip connection.
#pragma once

#include "nn/layer.hpp"

namespace reads::nn {

class Concatenate final : public Layer {
 public:
  Concatenate() = default;

  std::string_view type() const noexcept override { return "Concatenate"; }
  std::size_t arity() const noexcept override { return 2; }
  Shape output_shape(std::span<const Shape> inputs) const override;
  void forward_into(std::span<const Tensor* const> inputs, Tensor& out,
                    bool training) const override;
  void backward(std::span<const Tensor* const> inputs, const Tensor& output,
                const Tensor& grad_output,
                std::span<Tensor* const> grad_inputs,
                std::span<Tensor* const> param_grads) const override;
};

}  // namespace reads::nn
