// Flatten: (positions, channels) -> (1, positions * channels). Provided for
// MLP-style heads over convolutional features.
#pragma once

#include "nn/layer.hpp"

namespace reads::nn {

class Flatten final : public Layer {
 public:
  std::string_view type() const noexcept override { return "Flatten"; }
  Shape output_shape(std::span<const Shape> inputs) const override;
  void forward_into(std::span<const Tensor* const> inputs, Tensor& out,
                    bool training) const override;
  void backward(std::span<const Tensor* const> inputs, const Tensor& output,
                const Tensor& grad_output,
                std::span<Tensor* const> grad_inputs,
                std::span<Tensor* const> param_grads) const override;
};

}  // namespace reads::nn
