// Model: a single-input DAG of named layers with forward, full-activation
// capture (for the HLS precision profiler), and reverse-mode backward.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.hpp"
#include "util/thread_pool.hpp"

namespace reads::nn {

/// One graph node. Node 0 is always the input pseudo-node (layer == nullptr).
struct Node {
  std::string name;
  std::unique_ptr<Layer> layer;           // nullptr for the input node
  std::vector<std::size_t> inputs;        // indices of producer nodes
  Shape shape;                            // output shape, inferred at add()
};

/// All per-node outputs from one forward pass, indexed like Model::nodes().
struct Activations {
  std::vector<Tensor> values;
  const Tensor& output() const { return values.back(); }
};

/// Gradient storage parallel to Model::parameters(). Workers each own one
/// and the trainer reduces them, keeping backward() re-entrant.
class GradStore {
 public:
  GradStore() = default;
  explicit GradStore(const std::vector<Shape>& shapes);

  std::vector<Tensor>& tensors() noexcept { return grads_; }
  const std::vector<Tensor>& tensors() const noexcept { return grads_; }
  void zero();
  void add(const GradStore& other);
  void scale(float s);

 private:
  std::vector<Tensor> grads_;
};

class Model {
 public:
  /// Begin a model whose (single) input has the given shape.
  Model(std::string input_name, Shape input_shape);

  Model(Model&&) noexcept = default;
  Model& operator=(Model&&) noexcept = default;

  /// Append a layer consuming the named producer nodes; returns its node id.
  std::size_t add(std::string name, std::unique_ptr<Layer> layer,
                  const std::vector<std::string>& input_names);
  /// Convenience: consume the most recently added node.
  std::size_t add(std::string name, std::unique_ptr<Layer> layer);

  const std::vector<Node>& nodes() const noexcept { return nodes_; }
  std::size_t node_id(const std::string& name) const;
  const Shape& input_shape() const noexcept { return nodes_.front().shape; }
  const Shape& output_shape() const noexcept { return nodes_.back().shape; }

  /// Inference: returns the final output only. Internally runs over a
  /// per-thread scratch Activations, so repeated calls do not allocate.
  Tensor forward(const Tensor& input) const;

  /// Run many frames; results are in input order. Exec::kPool fans out on
  /// the global thread pool, Exec::kCaller stays on the calling thread
  /// (used by serving replicas to keep batches on their own core).
  std::vector<Tensor> forward_batch(std::span<const Tensor> inputs,
                                    util::Exec exec = util::Exec::kPool) const;

  /// Forward capturing every node's output (training and profiling).
  Activations forward_all(const Tensor& input, bool training = false) const;

  /// Same, but reusing caller-owned Activations storage: each node tensor is
  /// resized in place, so a loop that passes the same `acts` allocates only
  /// on its first iteration.
  void forward_all_into(const Tensor& input, Activations& acts,
                        bool training = false) const;

  /// Reverse-mode pass. `grad_output` is dLoss/dOutput for the activations
  /// in `acts`; parameter gradients are accumulated into `store`.
  void backward(const Activations& acts, const Tensor& grad_output,
                GradStore& store) const;

  /// Sequentially fold per-sample statistics (BatchNorm running stats).
  void update_running_stats(const Activations& acts);

  /// Flat views over every trainable tensor, in node order.
  std::vector<Tensor*> parameters();
  std::vector<const Tensor*> parameters() const;
  std::vector<Shape> parameter_shapes() const;
  std::size_t param_count() const;

  /// Human-readable layer table (name, type, output shape, params).
  std::string summary() const;

 private:
  std::vector<Node> nodes_;
};

}  // namespace reads::nn
