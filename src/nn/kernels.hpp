// Blocked inner kernels for the float Dense/Conv1D forward passes.
//
// Both kernels reproduce the seed loop nests' accumulation order *exactly*
// per output value (Dense: bias, then inputs ascending; Conv1D: bias, then
// one sub-sum per kernel tap, each summed over channels ascending), so the
// float outputs are bit-identical to the original implementation — only the
// schedule changes:
//
//  * small position counts (the MLP's positions == 1) use 4-wide output
//    register blocking, breaking the loop-carried fma dependence so four
//    dot products retire in parallel;
//  * large position counts (the U-Net's 260..65-position convolutions)
//    transpose the weights into a (k, in, out) block on the per-thread
//    scratch arena once per call, making the innermost loop a contiguous,
//    independent-lane sweep over outputs that the compiler can vectorize
//    without reassociating any per-output sum.
#pragma once

#include <cstddef>

namespace reads::nn::kernels {

/// y(positions, out) = x(positions, in) * w(out, in)^T + b.
void dense_forward(const float* x, const float* w, const float* b, float* y,
                   std::size_t positions, std::size_t in, std::size_t out);

/// 'same'-padded stride-1 Conv1D: w is (out, k, in), y is (positions, out).
void conv1d_forward(const float* x, const float* w, const float* b, float* y,
                    std::size_t positions, std::size_t in_ch,
                    std::size_t out_ch, std::size_t k);

}  // namespace reads::nn::kernels
