#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

#include "nn/layers/batchnorm.hpp"
#include "util/hash.hpp"

namespace reads::nn {

namespace {

constexpr std::uint32_t kMagic = 0x52445357;  // "RDSW"
constexpr std::uint32_t kVersion = 1;

/// Every tensor the file covers: trainable params, then BN buffers.
std::vector<Tensor*> serializable_tensors(Model& model) {
  auto tensors = model.parameters();
  for (auto& node : const_cast<std::vector<Node>&>(model.nodes())) {
    if (auto* bn = dynamic_cast<BatchNorm1D*>(node.layer.get())) {
      tensors.push_back(const_cast<Tensor*>(&bn->running_mean()));
      tensors.push_back(const_cast<Tensor*>(&bn->running_var()));
    }
  }
  return tensors;
}

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw std::runtime_error("weights file truncated");
  return v;
}

}  // namespace

void save_weights(const Model& model, const std::string& path) {
  auto tensors = serializable_tensors(const_cast<Model&>(model));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  write_pod(out, kMagic);
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint32_t>(tensors.size()));
  for (const auto* t : tensors) {
    write_pod(out, static_cast<std::uint32_t>(t->rank()));
    for (auto d : t->shape()) write_pod(out, static_cast<std::uint64_t>(d));
    out.write(reinterpret_cast<const char*>(t->data()),
              static_cast<std::streamsize>(t->numel() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

void load_weights(Model& model, const std::string& path) {
  auto tensors = serializable_tensors(model);
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  if (read_pod<std::uint32_t>(in) != kMagic) {
    throw std::runtime_error("bad magic in weights file: " + path);
  }
  if (read_pod<std::uint32_t>(in) != kVersion) {
    throw std::runtime_error("unsupported weights version in: " + path);
  }
  const auto count = read_pod<std::uint32_t>(in);
  if (count != tensors.size()) {
    throw std::runtime_error("weights file tensor count mismatch: " + path);
  }
  for (auto* t : tensors) {
    const auto rank = read_pod<std::uint32_t>(in);
    if (rank != t->rank()) {
      throw std::runtime_error("weights file rank mismatch: " + path);
    }
    for (auto d : t->shape()) {
      if (read_pod<std::uint64_t>(in) != d) {
        throw std::runtime_error("weights file shape mismatch: " + path);
      }
    }
    in.read(reinterpret_cast<char*>(t->data()),
            static_cast<std::streamsize>(t->numel() * sizeof(float)));
    if (!in) throw std::runtime_error("weights file truncated: " + path);
  }
}

void copy_weights(const Model& src, Model& dst) {
  auto from = serializable_tensors(const_cast<Model&>(src));
  auto to = serializable_tensors(dst);
  if (from.size() != to.size()) {
    throw std::runtime_error("copy_weights: tensor count mismatch");
  }
  for (std::size_t i = 0; i < from.size(); ++i) {
    if (from[i]->shape() != to[i]->shape()) {
      throw std::runtime_error("copy_weights: tensor shape mismatch");
    }
    *to[i] = *from[i];
  }
}

std::uint64_t weights_hash(const Model& model) {
  auto tensors = serializable_tensors(const_cast<Model&>(model));
  std::uint64_t h = util::kFnvOffset;
  for (const auto* t : tensors) {
    for (auto d : t->shape()) {
      const auto dim = static_cast<std::uint64_t>(d);
      h = util::fnv1a64(&dim, sizeof(dim), h);
    }
    h = util::fnv1a64(t->data(), t->numel() * sizeof(float), h);
  }
  return h;
}

}  // namespace reads::nn
