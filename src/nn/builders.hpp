// Builders for the two models the paper deploys.
//
// U-Net (Fig. 2): encoder-decoder over the 260 beam-loss monitors with skip
// connections and a position-wise Dense(2) + Sigmoid head producing, for
// each monitor, the probabilities that the Main Injector (MI) or the
// Recycler Ring (RR) is the primary loss source. With the default channel
// widths (31, 46, 140) the model has exactly 134,434 trainable parameters,
// matching the paper's Table III.
//
// MLP (Section III-A): Dense(128) + ReLU, Dense(518) + Sigmoid over the flat
// 260-value frame; used for early architecture exploration and verification.
// Note: the paper reports 100,102 parameters and 905 nodes for these layer
// sizes; the arithmetic gives 261*128 + 129*518 = 100,230 and 906 nodes. We
// keep the stated layer sizes and document the discrepancy.
#pragma once

#include "nn/model.hpp"

namespace reads::nn {

struct UNetConfig {
  std::size_t monitors = 260;  ///< input positions (must be divisible by 4)
  std::size_t c1 = 31;         ///< encoder level-1 channels
  std::size_t c2 = 46;         ///< encoder level-2 channels
  std::size_t c3 = 140;        ///< bottleneck channels
  std::size_t kernel = 3;
  std::size_t outputs_per_monitor = 2;  ///< MI and RR probabilities
  /// Prepend a BatchNorm layer that standardizes raw-magnitude inputs inside
  /// the model — the configuration the paper found hostile to quantization.
  bool input_batchnorm = false;
};

struct MlpConfig {
  std::size_t inputs = 260;
  std::size_t hidden = 128;
  std::size_t outputs = 518;
};

Model build_unet(const UNetConfig& config = {});
Model build_mlp(const MlpConfig& config = {});

/// Closed-form parameter count for a U-Net config (used by tests and by the
/// co-design search to reason about model capacity without instantiating).
std::size_t unet_param_count(const UNetConfig& config);

}  // namespace reads::nn
