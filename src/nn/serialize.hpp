// Weight (de)serialization. Topology is code (the builders in builders.hpp),
// so the file stores only tensors: every trainable parameter in node order,
// followed by BatchNorm running statistics. Shapes are stored and checked on
// load so a file cannot be silently applied to a mismatched architecture.
#pragma once

#include <string>

#include "nn/model.hpp"

namespace reads::nn {

void save_weights(const Model& model, const std::string& path);

/// Throws std::runtime_error on I/O failure or shape mismatch.
void load_weights(Model& model, const std::string& path);

}  // namespace reads::nn
