// Weight (de)serialization. Topology is code (the builders in builders.hpp),
// so the file stores only tensors: every trainable parameter in node order,
// followed by BatchNorm running statistics. Shapes are stored and checked on
// load so a file cannot be silently applied to a mismatched architecture.
#pragma once

#include <cstdint>
#include <string>

#include "nn/model.hpp"

namespace reads::nn {

void save_weights(const Model& model, const std::string& path);

/// Throws std::runtime_error on I/O failure or shape mismatch.
void load_weights(Model& model, const std::string& path);

/// Copy every serialized tensor (trainable parameters, then BatchNorm
/// running statistics) from `src` into `dst`. The two models must have the
/// same topology (same builder, same config); throws std::runtime_error on
/// tensor-count or shape mismatch. nn::Model is move-only because layers
/// own their storage, so this is how the lifecycle subsystem clones a model:
/// rebuild the topology with its builder, then copy the weights across.
void copy_weights(const Model& src, Model& dst);

/// FNV-1a/64 content hash over the exact bytes save_weights would persist
/// (shapes and float payloads of every serialized tensor, in order). Two
/// models hash equal iff load/save round-trips between them are
/// bit-identical; the model registry and the pretrained cache stamp use
/// this as the artifact identity.
std::uint64_t weights_hash(const Model& model);

}  // namespace reads::nn
