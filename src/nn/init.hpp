// Weight initialization (seeded, deterministic).
#pragma once

#include <cstdint>

#include "nn/model.hpp"

namespace reads::nn {

/// He-uniform for Dense/Conv1D weights (fan-in based, matching Keras'
/// default-ish behaviour for ReLU nets), zero biases, identity BatchNorm.
void init_he_uniform(Model& model, std::uint64_t seed);

/// Uniform [0, 1) for every parameter: the paper's "randomized U-Net"
/// pre-test configuration ("all the parameters are between 0 and 1").
void init_uniform01(Model& model, std::uint64_t seed);

}  // namespace reads::nn
