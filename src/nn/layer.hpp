// Layer abstraction for the float (Keras-equivalent) network.
//
// Activations are rank-2 tensors shaped (positions, channels): the U-Net
// input is (260, 1) and the MLP input is (1, 260). Layers are stateless
// during forward/backward except for their parameters; gradient accumulation
// goes to caller-owned storage so that mini-batches can be processed by
// several workers concurrently (each worker reduces into its own GradStore).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "tensor/tensor.hpp"

namespace reads::nn {

using tensor::Tensor;

using Shape = std::vector<std::size_t>;

class Layer {
 public:
  virtual ~Layer() = default;

  /// Stable type tag, e.g. "Dense", "Conv1D". Used by the HLS converter and
  /// by serialization sanity checks.
  virtual std::string_view type() const noexcept = 0;

  /// Number of inputs this layer consumes (1 for everything except Concat).
  virtual std::size_t arity() const noexcept { return 1; }

  /// Shape of the output given input shapes; throws on invalid shapes.
  virtual Shape output_shape(std::span<const Shape> inputs) const = 0;

  /// Compute the layer output into `out`, resizing it as needed. Callers
  /// reuse `out` across frames (Tensor::resize keeps the storage), which is
  /// what makes the per-frame hot paths allocation-free. `out` must not
  /// alias an input. `training` selects training-time behaviour (only
  /// BatchNorm cares). Must be safe to call concurrently.
  virtual void forward_into(std::span<const Tensor* const> inputs, Tensor& out,
                            bool training) const = 0;

  /// Allocating convenience wrapper over forward_into.
  Tensor forward(std::span<const Tensor* const> inputs, bool training) const {
    Tensor out;
    forward_into(inputs, out, training);
    return out;
  }

  /// Backward pass. `grad_inputs[i]` are pre-allocated tensors (shaped like
  /// the corresponding inputs) into which the layer must *accumulate* (+=)
  /// its input gradients — accumulation supports fan-out in the graph.
  /// `param_grads` are tensors parallel to params(); accumulate there too.
  virtual void backward(std::span<const Tensor* const> inputs,
                        const Tensor& output, const Tensor& grad_output,
                        std::span<Tensor* const> grad_inputs,
                        std::span<Tensor* const> param_grads) const = 0;

  /// Trainable parameters, in a stable order. Empty for stateless layers.
  virtual std::vector<Tensor*> params() { return {}; }
  std::vector<const Tensor*> params() const {
    auto ps = const_cast<Layer*>(this)->params();
    return {ps.begin(), ps.end()};
  }

  std::size_t param_count() const {
    std::size_t n = 0;
    for (const auto* p : params()) n += p->numel();
    return n;
  }

  /// Post-training hook: fold any statistics updates the layer gathered.
  /// Only BatchNorm implements this; the trainer calls it sequentially.
  virtual void update_running_stats(std::span<const Tensor* const> /*inputs*/) {}
};

}  // namespace reads::nn
