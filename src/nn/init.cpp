#include "nn/init.hpp"

#include <cmath>

#include "nn/layers/batchnorm.hpp"
#include "nn/layers/conv1d.hpp"
#include "nn/layers/dense.hpp"
#include "util/rng.hpp"

namespace reads::nn {

void init_he_uniform(Model& model, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  for (auto& node : const_cast<std::vector<Node>&>(model.nodes())) {
    if (!node.layer) continue;
    if (auto* dense = dynamic_cast<Dense*>(node.layer.get())) {
      const double limit =
          std::sqrt(6.0 / static_cast<double>(dense->in_features()));
      for (auto& w : dense->weight().flat()) {
        w = static_cast<float>(rng.uniform(-limit, limit));
      }
      dense->bias().zero();
    } else if (auto* conv = dynamic_cast<Conv1D*>(node.layer.get())) {
      const double fan_in =
          static_cast<double>(conv->in_channels() * conv->kernel_size());
      const double limit = std::sqrt(6.0 / fan_in);
      for (auto& w : conv->weight().flat()) {
        w = static_cast<float>(rng.uniform(-limit, limit));
      }
      conv->bias().zero();
    }
    // BatchNorm keeps its gamma=1 / beta=0 construction defaults.
  }
}

void init_uniform01(Model& model, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  for (auto* p : model.parameters()) {
    for (auto& w : p->flat()) w = static_cast<float>(rng.uniform());
  }
}

}  // namespace reads::nn
