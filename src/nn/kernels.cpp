#include "nn/kernels.hpp"

#include <algorithm>

#include "util/arena.hpp"

namespace reads::nn::kernels {

namespace {

// Below this many positions the per-call weight transpose costs more than
// the contiguous inner loop saves (the MLP runs every Dense at 1 position).
constexpr std::size_t kTransposeMinPositions = 8;

void dense_blocked(const float* x, const float* w, const float* b, float* y,
                   std::size_t positions, std::size_t in, std::size_t out) {
  for (std::size_t p = 0; p < positions; ++p) {
    const float* xp = x + p * in;
    float* yp = y + p * out;
    std::size_t o = 0;
    for (; o + 4 <= out; o += 4) {
      const float* w0 = w + (o + 0) * in;
      const float* w1 = w + (o + 1) * in;
      const float* w2 = w + (o + 2) * in;
      const float* w3 = w + (o + 3) * in;
      float a0 = b[o + 0];
      float a1 = b[o + 1];
      float a2 = b[o + 2];
      float a3 = b[o + 3];
      for (std::size_t i = 0; i < in; ++i) {
        const float xv = xp[i];
        a0 += w0[i] * xv;
        a1 += w1[i] * xv;
        a2 += w2[i] * xv;
        a3 += w3[i] * xv;
      }
      yp[o + 0] = a0;
      yp[o + 1] = a1;
      yp[o + 2] = a2;
      yp[o + 3] = a3;
    }
    for (; o < out; ++o) {
      const float* wo = w + o * in;
      float acc = b[o];
      for (std::size_t i = 0; i < in; ++i) acc += wo[i] * xp[i];
      yp[o] = acc;
    }
  }
}

void dense_transposed(const float* x, const float* w, const float* b, float* y,
                      std::size_t positions, std::size_t in, std::size_t out) {
  auto& arena = util::ScratchArena::local();
  util::ArenaScope scope(arena);
  arena.require<float>(in * out + out + 4);  // +4 covers word rounding
  auto wt = arena.alloc<float>(in * out);
  for (std::size_t o = 0; o < out; ++o) {
    for (std::size_t i = 0; i < in; ++i) wt[i * out + o] = w[o * in + i];
  }
  auto acc = arena.alloc<float>(out);
  for (std::size_t p = 0; p < positions; ++p) {
    const float* xp = x + p * in;
    std::copy(b, b + out, acc.data());
    for (std::size_t i = 0; i < in; ++i) {
      const float xv = xp[i];
      const float* wrow = wt.data() + i * out;
      for (std::size_t o = 0; o < out; ++o) acc[o] += wrow[o] * xv;
    }
    std::copy(acc.data(), acc.data() + out, y + p * out);
  }
}

void conv1d_transposed(const float* x, const float* w, const float* b,
                       float* y, std::size_t positions, std::size_t in_ch,
                       std::size_t out_ch, std::size_t k) {
  auto& arena = util::ScratchArena::local();
  util::ArenaScope scope(arena);
  arena.require<float>(k * in_ch * out_ch + out_ch + 4);
  auto wt = arena.alloc<float>(k * in_ch * out_ch);
  for (std::size_t o = 0; o < out_ch; ++o) {
    for (std::size_t dk = 0; dk < k; ++dk) {
      for (std::size_t i = 0; i < in_ch; ++i) {
        wt[(dk * in_ch + i) * out_ch + o] = w[(o * k + dk) * in_ch + i];
      }
    }
  }
  auto acc = arena.alloc<float>(out_ch);
  const auto pad = static_cast<std::ptrdiff_t>(k / 2);
  const auto pos = static_cast<std::ptrdiff_t>(positions);
  const auto kk = static_cast<std::ptrdiff_t>(k);
  for (std::ptrdiff_t p = 0; p < pos; ++p) {
    float* yp = y + static_cast<std::size_t>(p) * out_ch;
    std::copy(b, b + out_ch, yp);
    const std::ptrdiff_t dk_lo = std::max<std::ptrdiff_t>(0, pad - p);
    const std::ptrdiff_t dk_hi = std::min<std::ptrdiff_t>(kk, pos + pad - p);
    for (std::ptrdiff_t dk = dk_lo; dk < dk_hi; ++dk) {
      const float* xq = x + static_cast<std::size_t>(p + dk - pad) * in_ch;
      const float* wdk = wt.data() + static_cast<std::size_t>(dk) * in_ch * out_ch;
      // One sub-sum per tap, added to y afterwards — the seed's grouping.
      std::fill(acc.begin(), acc.end(), 0.0f);
      for (std::size_t i = 0; i < in_ch; ++i) {
        const float xv = xq[i];
        const float* wrow = wdk + i * out_ch;
        for (std::size_t o = 0; o < out_ch; ++o) acc[o] += wrow[o] * xv;
      }
      for (std::size_t o = 0; o < out_ch; ++o) yp[o] += acc[o];
    }
  }
}

void conv1d_blocked(const float* x, const float* w, const float* b, float* y,
                    std::size_t positions, std::size_t in_ch,
                    std::size_t out_ch, std::size_t k) {
  const auto pad = static_cast<std::ptrdiff_t>(k / 2);
  const auto pos = static_cast<std::ptrdiff_t>(positions);
  const auto kk = static_cast<std::ptrdiff_t>(k);
  for (std::ptrdiff_t p = 0; p < pos; ++p) {
    float* yp = y + static_cast<std::size_t>(p) * out_ch;
    std::copy(b, b + out_ch, yp);
    const std::ptrdiff_t dk_lo = std::max<std::ptrdiff_t>(0, pad - p);
    const std::ptrdiff_t dk_hi = std::min<std::ptrdiff_t>(kk, pos + pad - p);
    for (std::ptrdiff_t dk = dk_lo; dk < dk_hi; ++dk) {
      const float* xq = x + static_cast<std::size_t>(p + dk - pad) * in_ch;
      std::size_t o = 0;
      for (; o + 4 <= out_ch; o += 4) {
        const float* w0 = w + ((o + 0) * k + static_cast<std::size_t>(dk)) * in_ch;
        const float* w1 = w + ((o + 1) * k + static_cast<std::size_t>(dk)) * in_ch;
        const float* w2 = w + ((o + 2) * k + static_cast<std::size_t>(dk)) * in_ch;
        const float* w3 = w + ((o + 3) * k + static_cast<std::size_t>(dk)) * in_ch;
        float a0 = 0.0f;
        float a1 = 0.0f;
        float a2 = 0.0f;
        float a3 = 0.0f;
        for (std::size_t i = 0; i < in_ch; ++i) {
          const float xv = xq[i];
          a0 += w0[i] * xv;
          a1 += w1[i] * xv;
          a2 += w2[i] * xv;
          a3 += w3[i] * xv;
        }
        yp[o + 0] += a0;
        yp[o + 1] += a1;
        yp[o + 2] += a2;
        yp[o + 3] += a3;
      }
      for (; o < out_ch; ++o) {
        const float* wk = w + (o * k + static_cast<std::size_t>(dk)) * in_ch;
        float acc = 0.0f;
        for (std::size_t i = 0; i < in_ch; ++i) acc += wk[i] * xq[i];
        yp[o] += acc;
      }
    }
  }
}

}  // namespace

void dense_forward(const float* x, const float* w, const float* b, float* y,
                   std::size_t positions, std::size_t in, std::size_t out) {
  if (positions >= kTransposeMinPositions && out >= 4) {
    dense_transposed(x, w, b, y, positions, in, out);
  } else {
    dense_blocked(x, w, b, y, positions, in, out);
  }
}

void conv1d_forward(const float* x, const float* w, const float* b, float* y,
                    std::size_t positions, std::size_t in_ch,
                    std::size_t out_ch, std::size_t k) {
  if (positions >= kTransposeMinPositions && out_ch >= 4) {
    conv1d_transposed(x, w, b, y, positions, in_ch, out_ch, k);
  } else {
    conv1d_blocked(x, w, b, y, positions, in_ch, out_ch, k);
  }
}

}  // namespace reads::nn::kernels
