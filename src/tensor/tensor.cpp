#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace reads::tensor {

namespace {
std::size_t shape_numel(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (auto d : shape) {
    if (d == 0) throw std::invalid_argument("Tensor: zero dimension");
    n *= d;
  }
  return shape.empty() ? 0 : n;
}
}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor::Tensor(std::initializer_list<std::size_t> shape)
    : Tensor(std::vector<std::size_t>(shape)) {}

Tensor Tensor::from(std::vector<std::size_t> shape, std::vector<float> data) {
  if (shape_numel(shape) != data.size()) {
    throw std::invalid_argument("Tensor::from: shape/data size mismatch");
  }
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(data);
  return t;
}

float& Tensor::at(std::size_t i, std::size_t j) {
  if (rank() != 2) throw std::logic_error("Tensor::at(i,j) requires rank 2");
  if (i >= shape_[0] || j >= shape_[1]) throw std::out_of_range("Tensor::at");
  return data_[i * shape_[1] + j];
}

float Tensor::at(std::size_t i, std::size_t j) const {
  return const_cast<Tensor&>(*this).at(i, j);
}

Tensor Tensor::reshaped(std::vector<std::size_t> shape) const {
  if (shape_numel(shape) != numel()) {
    throw std::invalid_argument("Tensor::reshaped: element count mismatch");
  }
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = data_;
  return t;
}

void Tensor::resize(std::vector<std::size_t> shape) {
  const std::size_t n = shape_numel(shape);
  shape_ = std::move(shape);
  data_.resize(n);
}

void Tensor::resize(std::span<const std::size_t> shape) {
  if (shape_.size() == shape.size() &&
      std::equal(shape.begin(), shape.end(), shape_.begin())) {
    return;
  }
  resize(std::vector<std::size_t>(shape.begin(), shape.end()));
}

void Tensor::fill(float v) noexcept { std::fill(data_.begin(), data_.end(), v); }

Tensor& Tensor::add_scaled(const Tensor& other, float scale) {
  if (other.numel() != numel()) {
    throw std::invalid_argument("Tensor::add_scaled: size mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other.data_[i];
  return *this;
}

Tensor& Tensor::scale(float s) noexcept {
  for (auto& v : data_) v *= s;
  return *this;
}

float Tensor::max_abs() const noexcept {
  float m = 0.0f;
  for (auto v : data_) m = std::max(m, std::fabs(v));
  return m;
}

double Tensor::sum() const noexcept {
  return std::accumulate(data_.begin(), data_.end(), 0.0);
}

std::string Tensor::shape_string() const {
  std::string s = "(";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    s += std::to_string(shape_[i]);
    if (i + 1 < shape_.size()) s += ", ";
  }
  return s + ")";
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  }
  float m = 0.0f;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

}  // namespace reads::tensor
