// A small dense row-major float tensor. This is deliberately minimal: the
// network layers own their loop nests, so the tensor only provides storage,
// shape bookkeeping, and a few whole-tensor operations.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace reads::tensor {

class Tensor {
 public:
  Tensor() = default;

  /// Construct zero-filled with the given shape.
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::initializer_list<std::size_t> shape);

  static Tensor from(std::vector<std::size_t> shape, std::vector<float> data);

  const std::vector<std::size_t>& shape() const noexcept { return shape_; }
  std::size_t rank() const noexcept { return shape_.size(); }
  std::size_t dim(std::size_t i) const { return shape_.at(i); }
  std::size_t numel() const noexcept { return data_.size(); }

  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }
  std::span<float> flat() noexcept { return data_; }
  std::span<const float> flat() const noexcept { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// 2-D accessors (the layers work on (positions, channels) activations).
  float& at(std::size_t i, std::size_t j);
  float at(std::size_t i, std::size_t j) const;

  /// Reinterpret with a new shape of identical element count.
  Tensor reshaped(std::vector<std::size_t> shape) const;

  /// Change shape in place, reusing the existing storage when the element
  /// count is unchanged (the scratch-reuse forward paths rely on this to
  /// avoid per-frame allocations). Contents are unspecified after a resize
  /// that changes the element count; callers overwrite every element.
  void resize(std::vector<std::size_t> shape);

  /// Same, from a borrowed shape. When the shape already matches this is a
  /// no-op (not even the shape vector is touched), so per-frame serving
  /// paths calling it with a fixed shape perform zero allocations.
  void resize(std::span<const std::size_t> shape);
  void resize(std::initializer_list<std::size_t> shape) {
    resize(std::span<const std::size_t>(shape.begin(), shape.size()));
  }

  void fill(float v) noexcept;
  void zero() noexcept { fill(0.0f); }

  /// Elementwise in-place helpers used by the optimizer.
  Tensor& add_scaled(const Tensor& other, float scale);  // this += scale*other
  Tensor& scale(float s) noexcept;

  float max_abs() const noexcept;
  double sum() const noexcept;

  std::string shape_string() const;

  friend bool operator==(const Tensor&, const Tensor&) = default;

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

/// Max elementwise |a - b|; shapes must match.
float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace reads::tensor
