#include "train/qat.hpp"

#include <algorithm>
#include <cmath>

#include "fixed/format.hpp"

namespace reads::train {

namespace {
// Sign bit + magnitude bits for |v| — the same sizing rule as
// hls::int_bits_for, duplicated here so the training layer does not depend
// on the hls layer.
int int_bits_for_abs(double max_abs) {
  if (!(max_abs > 0.0)) return 1;
  return std::max(
      1, static_cast<int>(std::ceil(std::log2(max_abs * (1.0 + 1e-9)))) + 1);
}
}  // namespace

double project_weights(nn::Model& model, int weight_bits) {
  double max_move = 0.0;
  for (auto* p : model.parameters()) {
    const double max_abs = p->max_abs();
    const int int_bits =
        std::clamp(int_bits_for_abs(max_abs), 1, weight_bits);
    const fixed::FixedFormat fmt(weight_bits, int_bits, true,
                                 fixed::QuantMode::kRound);
    for (std::size_t i = 0; i < p->numel(); ++i) {
      const double before = (*p)[i];
      const double after = fmt.apply(before);
      max_move = std::max(max_move, std::fabs(after - before));
      (*p)[i] = static_cast<float>(after);
    }
  }
  return max_move;
}

TrainResult qat_fit(nn::Model& model, Loss& loss, Optimizer& optimizer,
                    Dataset dataset, const QatConfig& config) {
  Trainer trainer(model, loss, optimizer);
  TrainConfig tc = config.train;
  const auto chained = tc.after_batch;
  tc.after_batch = [&model, &config, chained] {
    project_weights(model, config.weight_bits);
    if (chained) chained();
  };
  auto result = trainer.fit(std::move(dataset), tc);
  project_weights(model, config.weight_bits);  // leave weights on-grid
  return result;
}

}  // namespace reads::train
