#include "train/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace reads::train {

namespace {
void check_layout(const std::vector<Tensor*>& params, const GradStore& grads) {
  if (params.size() != grads.tensors().size()) {
    throw std::invalid_argument("optimizer: param/grad layout mismatch");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i]->shape() != grads.tensors()[i].shape()) {
      throw std::invalid_argument("optimizer: param/grad shape mismatch");
    }
  }
}

std::vector<Tensor> zeros_like(const std::vector<Tensor*>& params) {
  std::vector<Tensor> zs;
  zs.reserve(params.size());
  for (const auto* p : params) zs.emplace_back(p->shape());
  return zs;
}
}  // namespace

Sgd::Sgd(double lr, double momentum) : lr_(lr), momentum_(momentum) {
  if (lr <= 0.0) throw std::invalid_argument("Sgd: lr must be positive");
}

void Sgd::step(const std::vector<Tensor*>& params, const GradStore& grads) {
  check_layout(params, grads);
  if (velocity_.empty() && momentum_ != 0.0) velocity_ = zeros_like(params);
  for (std::size_t i = 0; i < params.size(); ++i) {
    Tensor& p = *params[i];
    const Tensor& g = grads.tensors()[i];
    if (momentum_ != 0.0) {
      Tensor& vel = velocity_[i];
      for (std::size_t j = 0; j < p.numel(); ++j) {
        vel[j] = static_cast<float>(momentum_ * vel[j] - lr_ * g[j]);
        p[j] += vel[j];
      }
    } else {
      for (std::size_t j = 0; j < p.numel(); ++j) {
        p[j] -= static_cast<float>(lr_ * g[j]);
      }
    }
  }
}

Adam::Adam(double lr, double beta1, double beta2, double epsilon)
    : lr_(lr), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {
  if (lr <= 0.0) throw std::invalid_argument("Adam: lr must be positive");
}

void Adam::step(const std::vector<Tensor*>& params, const GradStore& grads) {
  check_layout(params, grads);
  if (m_.empty()) {
    m_ = zeros_like(params);
    v_ = zeros_like(params);
  }
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, t_);
  const double bias2 = 1.0 - std::pow(beta2_, t_);
  for (std::size_t i = 0; i < params.size(); ++i) {
    Tensor& p = *params[i];
    const Tensor& g = grads.tensors()[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (std::size_t j = 0; j < p.numel(); ++j) {
      const double gj = g[j];
      m[j] = static_cast<float>(beta1_ * m[j] + (1.0 - beta1_) * gj);
      v[j] = static_cast<float>(beta2_ * v[j] + (1.0 - beta2_) * gj * gj);
      const double mhat = m[j] / bias1;
      const double vhat = v[j] / bias2;
      p[j] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + epsilon_));
    }
  }
}

}  // namespace reads::train
