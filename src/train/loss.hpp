// Training losses. Each returns the scalar loss and fills dLoss/dPred.
#pragma once

#include <string_view>

#include "tensor/tensor.hpp"

namespace reads::train {

using tensor::Tensor;

class Loss {
 public:
  virtual ~Loss() = default;
  virtual std::string_view name() const noexcept = 0;
  /// Mean loss over all elements; grad is resized/overwritten.
  virtual double compute(const Tensor& pred, const Tensor& target,
                         Tensor& grad) const = 0;
};

/// Mean squared error. The de-blending task is "semantic regression" of
/// per-monitor source fractions, so MSE is the primary loss.
class MseLoss final : public Loss {
 public:
  std::string_view name() const noexcept override { return "mse"; }
  double compute(const Tensor& pred, const Tensor& target,
                 Tensor& grad) const override;
};

/// Binary cross-entropy over sigmoid outputs (clamped for stability).
class BceLoss final : public Loss {
 public:
  std::string_view name() const noexcept override { return "bce"; }
  double compute(const Tensor& pred, const Tensor& target,
                 Tensor& grad) const override;
};

}  // namespace reads::train
