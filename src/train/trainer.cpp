#include "train/trainer.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace reads::train {

Trainer::Trainer(nn::Model& model, Loss& loss, Optimizer& optimizer)
    : model_(model), loss_(loss), optimizer_(optimizer) {}

double Trainer::run_batch(const Dataset& data, std::size_t begin,
                          std::size_t end) {
  const std::size_t n = end - begin;
  auto& pool = util::ThreadPool::global();
  const std::size_t shards = std::min(n, pool.worker_count() + 1);
  const std::size_t per_shard = (n + shards - 1) / shards;

  const auto shapes = model_.parameter_shapes();
  std::vector<nn::GradStore> stores;
  stores.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) stores.emplace_back(shapes);
  std::vector<double> shard_loss(shards, 0.0);

  pool.parallel_for(0, shards, [&](std::size_t s) {
    const std::size_t lo = begin + s * per_shard;
    const std::size_t hi = std::min(end, lo + per_shard);
    Tensor grad_out;
    nn::Activations acts;  // reused across the shard's samples
    for (std::size_t i = lo; i < hi; ++i) {
      model_.forward_all_into(data.inputs[i], acts, /*training=*/true);
      shard_loss[s] += loss_.compute(acts.output(), data.targets[i], grad_out);
      model_.backward(acts, grad_out, stores[s]);
    }
  });

  for (std::size_t s = 1; s < shards; ++s) stores[0].add(stores[s]);
  stores[0].scale(1.0f / static_cast<float>(n));
  optimizer_.step(model_.parameters(), stores[0]);

  // Fold running statistics (BatchNorm) from one representative sample;
  // done sequentially so layers never see concurrent mutation.
  const auto acts = model_.forward_all(data.inputs[begin], /*training=*/true);
  model_.update_running_stats(acts);

  double total = 0.0;
  for (auto l : shard_loss) total += l;
  return total;
}

TrainResult Trainer::fit(Dataset dataset, const TrainConfig& config) {
  if (dataset.empty()) throw std::invalid_argument("Trainer: empty dataset");
  if (config.batch_size == 0) {
    throw std::invalid_argument("Trainer: batch_size must be positive");
  }
  TrainResult result;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    if (config.shuffle) dataset.shuffle(config.shuffle_seed + epoch);
    double epoch_loss = 0.0;
    for (std::size_t b = 0; b < dataset.size(); b += config.batch_size) {
      const std::size_t e = std::min(dataset.size(), b + config.batch_size);
      epoch_loss += run_batch(dataset, b, e);
      if (config.after_batch) config.after_batch();
    }
    epoch_loss /= static_cast<double>(dataset.size());
    result.epoch_loss.push_back(epoch_loss);
    if (config.on_epoch) config.on_epoch(epoch, epoch_loss);
  }
  return result;
}

double Trainer::evaluate(const Dataset& dataset) const {
  if (dataset.empty()) return 0.0;
  std::atomic<double> total{0.0};
  util::parallel_for(0, dataset.size(), [&](std::size_t i) {
    Tensor grad;
    const Tensor pred = model_.forward(dataset.inputs[i]);
    const double l = loss_.compute(pred, dataset.targets[i], grad);
    double cur = total.load(std::memory_order_relaxed);
    while (!total.compare_exchange_weak(cur, cur + l,
                                        std::memory_order_relaxed)) {
    }
  });
  return total.load() / static_cast<double>(dataset.size());
}

}  // namespace reads::train
