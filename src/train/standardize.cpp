#include "train/standardize.hpp"

#include <cmath>
#include <stdexcept>

namespace reads::train {

namespace {
constexpr double kStdFloor = 1e-6;
}

void Standardizer::fit(const std::vector<Tensor>& frames) {
  if (frames.empty()) throw std::invalid_argument("Standardizer: no frames");
  const auto& shape = frames.front().shape();
  const std::size_t n = frames.front().numel();
  std::vector<double> mean(n, 0.0);
  std::vector<double> m2(n, 0.0);
  std::size_t count = 0;
  for (const auto& f : frames) {
    if (f.shape() != shape) {
      throw std::invalid_argument("Standardizer: frame shape mismatch");
    }
    ++count;
    for (std::size_t i = 0; i < n; ++i) {
      const double delta = f[i] - mean[i];
      mean[i] += delta / static_cast<double>(count);
      m2[i] += delta * (f[i] - mean[i]);
    }
  }
  mean_ = Tensor(shape);
  std_ = Tensor(shape);
  for (std::size_t i = 0; i < n; ++i) {
    mean_[i] = static_cast<float>(mean[i]);
    const double var =
        count > 1 ? m2[i] / static_cast<double>(count - 1) : 0.0;
    std_[i] = static_cast<float>(std::max(std::sqrt(var), kStdFloor));
  }
  fitted_ = true;
}

void Standardizer::fit_global(const std::vector<Tensor>& frames) {
  if (frames.empty()) throw std::invalid_argument("Standardizer: no frames");
  const auto& shape = frames.front().shape();
  double mean = 0.0;
  double m2 = 0.0;
  std::size_t count = 0;
  for (const auto& f : frames) {
    if (f.shape() != shape) {
      throw std::invalid_argument("Standardizer: frame shape mismatch");
    }
    for (std::size_t i = 0; i < f.numel(); ++i) {
      ++count;
      const double delta = f[i] - mean;
      mean += delta / static_cast<double>(count);
      m2 += delta * (f[i] - mean);
    }
  }
  const double var = count > 1 ? m2 / static_cast<double>(count - 1) : 0.0;
  const double sd = std::max(std::sqrt(var), kStdFloor);
  mean_ = Tensor(shape);
  std_ = Tensor(shape);
  mean_.fill(static_cast<float>(mean));
  std_.fill(static_cast<float>(sd));
  fitted_ = true;
}

Tensor Standardizer::transform(const Tensor& frame) const {
  if (!fitted_) throw std::logic_error("Standardizer: not fitted");
  if (frame.shape() != mean_.shape()) {
    throw std::invalid_argument("Standardizer: frame shape mismatch");
  }
  Tensor out = frame;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    out[i] = (out[i] - mean_[i]) / std_[i];
  }
  return out;
}

std::vector<Tensor> Standardizer::transform(
    const std::vector<Tensor>& frames) const {
  std::vector<Tensor> out;
  out.reserve(frames.size());
  for (const auto& f : frames) out.push_back(transform(f));
  return out;
}

Tensor Standardizer::inverse(const Tensor& frame) const {
  if (!fitted_) throw std::logic_error("Standardizer: not fitted");
  Tensor out = frame;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    out[i] = out[i] * std_[i] + mean_[i];
  }
  return out;
}

}  // namespace reads::train
