#include "train/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace reads::train {

namespace {
void check_shapes(const Tensor& pred, const Tensor& target) {
  if (pred.shape() != target.shape()) {
    throw std::invalid_argument("loss: pred/target shape mismatch");
  }
}
}  // namespace

double MseLoss::compute(const Tensor& pred, const Tensor& target,
                        Tensor& grad) const {
  check_shapes(pred, target);
  grad = Tensor(pred.shape());
  const auto n = static_cast<double>(pred.numel());
  double loss = 0.0;
  for (std::size_t i = 0; i < pred.numel(); ++i) {
    const double d = static_cast<double>(pred[i]) - target[i];
    loss += d * d;
    grad[i] = static_cast<float>(2.0 * d / n);
  }
  return loss / n;
}

double BceLoss::compute(const Tensor& pred, const Tensor& target,
                        Tensor& grad) const {
  check_shapes(pred, target);
  grad = Tensor(pred.shape());
  const auto n = static_cast<double>(pred.numel());
  constexpr double kEps = 1e-7;
  double loss = 0.0;
  for (std::size_t i = 0; i < pred.numel(); ++i) {
    const double p = std::clamp(static_cast<double>(pred[i]), kEps, 1.0 - kEps);
    const double t = target[i];
    loss += -(t * std::log(p) + (1.0 - t) * std::log(1.0 - p));
    grad[i] = static_cast<float>((p - t) / (p * (1.0 - p)) / n);
  }
  return loss / n;
}

}  // namespace reads::train
