// Quantization-aware training (extension beyond the paper's post-training
// quantization): after every optimizer step the weights are projected onto
// the fixed-point grid they will occupy in firmware, so the optimizer learns
// around the quantization error instead of meeting it after the fact. This
// is the weight-projection ("rounding-aware") form of QAT; activations keep
// their float path during training and are ranged by the profiler as usual.
#pragma once

#include "nn/model.hpp"
#include "train/dataset.hpp"
#include "train/loss.hpp"
#include "train/optimizer.hpp"
#include "train/trainer.hpp"

namespace reads::train {

struct QatConfig {
  int weight_bits = 16;
  /// Integer bits are sized per parameter tensor from its max |w| (the same
  /// rule the layer-based profiler applies), re-evaluated at each
  /// projection.
  TrainConfig train;
};

/// Round every trainable parameter of `model` onto the `weight_bits`-wide
/// fixed-point grid (per-tensor integer bits from max |w|). Returns the
/// largest projection distance (how far the weights were from the grid).
double project_weights(nn::Model& model, int weight_bits);

/// Trainer::fit with weight projection after every batch.
TrainResult qat_fit(nn::Model& model, Loss& loss, Optimizer& optimizer,
                    Dataset dataset, const QatConfig& config);

}  // namespace reads::train
