// Mini-batch trainer: forward/backward per sample, gradients reduced across
// worker shards, one optimizer step per batch. Deterministic for a fixed
// seed and worker partitioning.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "nn/model.hpp"
#include "train/dataset.hpp"
#include "train/loss.hpp"
#include "train/optimizer.hpp"

namespace reads::train {

struct TrainConfig {
  std::size_t epochs = 10;
  std::size_t batch_size = 16;
  std::uint64_t shuffle_seed = 1;
  bool shuffle = true;
  /// Called after each epoch with (epoch index, mean training loss).
  std::function<void(std::size_t, double)> on_epoch;
  /// Called after every optimizer step (quantization-aware training hooks
  /// project weights here).
  std::function<void()> after_batch;
};

struct TrainResult {
  std::vector<double> epoch_loss;  ///< mean per-sample loss, one per epoch
  double final_loss() const { return epoch_loss.empty() ? 0.0 : epoch_loss.back(); }
};

class Trainer {
 public:
  Trainer(nn::Model& model, Loss& loss, Optimizer& optimizer);

  TrainResult fit(Dataset dataset, const TrainConfig& config);

  /// Mean loss over a dataset without updating parameters.
  double evaluate(const Dataset& dataset) const;

 private:
  double run_batch(const Dataset& data, std::size_t begin, std::size_t end);

  nn::Model& model_;
  Loss& loss_;
  Optimizer& optimizer_;
};

}  // namespace reads::train
