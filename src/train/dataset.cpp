#include "train/dataset.hpp"

#include <stdexcept>
#include <utility>

#include "util/rng.hpp"

namespace reads::train {

void Dataset::add(Tensor input, Tensor target) {
  inputs.push_back(std::move(input));
  targets.push_back(std::move(target));
}

void Dataset::shuffle(std::uint64_t seed) {
  if (inputs.size() != targets.size()) {
    throw std::logic_error("Dataset: inputs/targets out of sync");
  }
  util::Xoshiro256 rng(seed);
  for (std::size_t i = inputs.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(i));
    std::swap(inputs[i - 1], inputs[j]);
    std::swap(targets[i - 1], targets[j]);
  }
}

std::pair<Dataset, Dataset> Dataset::split(double train_fraction) const {
  if (train_fraction <= 0.0 || train_fraction > 1.0) {
    throw std::invalid_argument("Dataset::split: fraction out of (0, 1]");
  }
  const auto cut = static_cast<std::size_t>(
      train_fraction * static_cast<double>(inputs.size()));
  Dataset train;
  Dataset held;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (i < cut) {
      train.add(inputs[i], targets[i]);
    } else {
      held.add(inputs[i], targets[i]);
    }
  }
  return {std::move(train), std::move(held)};
}

}  // namespace reads::train
