// Feature-wise standardization of BLM frames.
//
// This is the paper's key algorithm-level fix: raw BLM magnitudes sit at
// 105k–120k, and a model trained on raw data (with a BatchNorm layer doing
// in-model standardization) quantizes poorly at 16 bits. Standardizing the
// data *before* training keeps every layer's dynamic range quantizable.
#pragma once

#include <string>

#include "tensor/tensor.hpp"

namespace reads::train {

using tensor::Tensor;

class Standardizer {
 public:
  Standardizer() = default;

  /// Fit per-feature mean/std over a dataset of same-shaped frames.
  /// Features are the flattened elements of each frame.
  void fit(const std::vector<Tensor>& frames);

  /// Fit one scalar mean/std over every element of every frame — the
  /// facility-style single scale for the whole BLM array. Monitors whose
  /// pedestal or activity deviates from the array average then sit tens of
  /// units from zero after transform, which is what gives the deployed
  /// model its wide per-layer dynamic ranges (and the paper its need for
  /// ~10 integer bits).
  void fit_global(const std::vector<Tensor>& frames);

  bool fitted() const noexcept { return fitted_; }
  const Tensor& mean() const noexcept { return mean_; }
  const Tensor& stddev() const noexcept { return std_; }

  /// (x - mean) / std, elementwise; std floors at a small epsilon.
  Tensor transform(const Tensor& frame) const;
  std::vector<Tensor> transform(const std::vector<Tensor>& frames) const;
  /// Inverse of transform().
  Tensor inverse(const Tensor& frame) const;

 private:
  Tensor mean_;
  Tensor std_;
  bool fitted_ = false;
};

}  // namespace reads::train
