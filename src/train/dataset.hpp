// In-memory supervised dataset: parallel vectors of input and target frames.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace reads::train {

using tensor::Tensor;

struct Dataset {
  std::vector<Tensor> inputs;
  std::vector<Tensor> targets;

  std::size_t size() const noexcept { return inputs.size(); }
  bool empty() const noexcept { return inputs.empty(); }

  void add(Tensor input, Tensor target);

  /// Deterministic Fisher-Yates shuffle of (input, target) pairs.
  void shuffle(std::uint64_t seed);

  /// Split off the last `fraction` of samples as a held-out set.
  std::pair<Dataset, Dataset> split(double train_fraction) const;
};

}  // namespace reads::train
