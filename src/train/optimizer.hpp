// Gradient-descent optimizers operating on a model's parameter list and a
// reduced GradStore. State (momentum/Adam moments) is laid out parallel to
// the parameter tensors and allocated on first step.
#pragma once

#include <string_view>
#include <vector>

#include "nn/model.hpp"

namespace reads::train {

using nn::GradStore;
using tensor::Tensor;

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual std::string_view name() const noexcept = 0;
  /// Apply one update. `params` and `grads` must stay structurally identical
  /// across calls (same tensors in the same order).
  virtual void step(const std::vector<Tensor*>& params,
                    const GradStore& grads) = 0;
};

class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0);
  std::string_view name() const noexcept override { return "sgd"; }
  void step(const std::vector<Tensor*>& params,
            const GradStore& grads) override;

 private:
  double lr_;
  double momentum_;
  std::vector<Tensor> velocity_;
};

class Adam final : public Optimizer {
 public:
  explicit Adam(double lr = 1e-3, double beta1 = 0.9, double beta2 = 0.999,
                double epsilon = 1e-8);
  std::string_view name() const noexcept override { return "adam"; }
  void step(const std::vector<Tensor*>& params,
            const GradStore& grads) override;

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double epsilon_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  long t_ = 0;
};

}  // namespace reads::train
