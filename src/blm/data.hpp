// Dataset assembly for training and evaluation, including the
// standardization policy the paper converged on.
#pragma once

#include <cstdint>

#include "blm/generator.hpp"
#include "train/dataset.hpp"
#include "train/standardize.hpp"

namespace reads::blm {

enum class InputScaling {
  kRaw,           ///< raw 105k–120k magnitudes (the failed configuration)
  kStandardized,  ///< per-monitor standardization before training (the fix)
};

struct BuiltData {
  train::Dataset dataset;          ///< inputs scaled per `scaling`
  train::Standardizer standardizer;  ///< fitted on the raw frames
  InputScaling scaling = InputScaling::kStandardized;
};

/// Generate `count` frames from a fermilab-like machine and package them.
/// For kStandardized the standardizer is fitted on these frames and applied;
/// for kRaw the standardizer is still fitted (so callers can compare) but
/// inputs stay raw.
BuiltData build_data(std::size_t count, std::uint64_t seed,
                     InputScaling scaling = InputScaling::kStandardized,
                     const MachineConfig& config = MachineConfig::fermilab_like());

/// Sample `count` frames and report mean target magnitudes per channel plus
/// the largest standardized input value (standardizer fitted on the same
/// frames). Validates the machine model against the paper's observed output
/// asymmetry (mean 0.17 MI vs 0.42 RR) and wide input dynamic range.
TargetStats compute_target_stats(
    std::size_t count, std::uint64_t seed,
    const MachineConfig& config = MachineConfig::fermilab_like());

/// Fit the facility-style global standardizer on the long-run monitoring
/// stream (config.background()) using the same machine seed (identical
/// pedestals/gains).
train::Standardizer fit_background_standardizer(std::uint64_t seed,
                                                const MachineConfig& config,
                                                std::size_t frames = 256);

/// Generate frames only (no targets needed), scaled with a fitted
/// standardizer; used by the quantization accuracy sweeps.
std::vector<tensor::Tensor> build_eval_inputs(
    std::size_t count, std::uint64_t seed, const train::Standardizer& standardizer,
    const MachineConfig& config = MachineConfig::fermilab_like());

}  // namespace reads::blm
