// Synthetic model of the Fermilab Main Injector (MI) / Recycler Ring (RR)
// beam-loss environment.
//
// The real facility has 260 Beam Loss Monitors (BLMs) along a shared tunnel;
// the RR sits above the MI, so every monitor sees an additive blend of both
// machines' losses, and the de-blending task is to attribute each monitor's
// reading to its primary source. This model substitutes for the proprietary
// BLM data: each machine has a set of loss-source locations (aperture
// restrictions, injection/extraction regions); a loss event at a source
// deposits ionizing radiation into nearby monitors with an exponentially
// decaying spatial response; monitor readings are baseline + gain * blended
// loss + noise, with raw magnitudes in the paper's 105k–120k range.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace reads::blm {

/// One machine's loss geometry and event statistics.
struct MachineSpec {
  std::vector<std::size_t> source_positions;  ///< monitor indices of sources
  double event_probability = 0.5;   ///< P(source active in a frame)
  double intensity_mu = 0.0;        ///< lognormal intensity (underlying mu)
  double intensity_sigma = 0.7;
  double response_lambda = 3.0;     ///< spatial decay length (monitors)
};

struct MachineConfig {
  std::size_t monitors = 260;
  MachineSpec mi;
  MachineSpec rr;
  double baseline = 105'000.0;      ///< quiescent monitor reading
  double full_scale = 120'000.0;    ///< reading at nominal max loss
  /// Per-monitor pedestal offset spread (raw units): installed BLMs sit at
  /// visibly different quiescent levels.
  double pedestal_spread = 3'000.0;
  double gain_jitter = 0.05;        ///< per-monitor gain spread (fraction)
  double noise_sigma = 60.0;        ///< additive readout noise (raw units)
  /// Loss level at which a monitor's source attribution reaches 50%
  /// significance (fraction of nominal full-scale loss).
  double significance_threshold = 0.05;
  /// Event-rate multiplier of the long-run monitoring stream relative to
  /// the curated loss-event datasets. The facility's normalization
  /// constants come from this mostly-quiet stream, so standardized values
  /// during actual loss events routinely reach tens to hundreds of units —
  /// the wide dynamic range that drove the paper's precision choices.
  double background_event_scale = 0.04;

  /// Copy of this config with event probabilities scaled down to the
  /// long-run monitoring stream.
  MachineConfig background() const;

  /// The paper's deployment: MI and RR sources interleaved around the ring,
  /// with RR events more frequent/intense so that mean target magnitudes
  /// land near the paper's 0.17 (MI) / 0.42 (RR). Loss intensities are
  /// heavy-tailed (large lognormal sigma): routine losses sit near the
  /// noise floor while rare large events reach tens of standard deviations,
  /// giving the standardized data the wide dynamic range that forced the
  /// paper to 18 uniform bits.
  static MachineConfig fermilab_like();

  /// Stable digest of every field, used to key trained-model caches.
  std::uint64_t fingerprint() const noexcept;
};

/// Per-channel mean of the generated targets (used to validate the
/// MI/RR asymmetry against the paper's 0.17 / 0.42 output magnitudes).
struct TargetStats {
  double mean_mi = 0.0;
  double mean_rr = 0.0;
  double max_standardized_input = 0.0;
};

/// Ground truth for one 3 ms frame.
struct LossTruth {
  std::vector<double> mi;      ///< per-monitor MI loss (nominal units)
  std::vector<double> rr;      ///< per-monitor RR loss
};

/// The blended, noisy readings a frame of monitors reports.
class MachineModel {
 public:
  explicit MachineModel(MachineConfig config, std::uint64_t seed);

  const MachineConfig& config() const noexcept { return config_; }

  /// Sample one frame of machine activity (which sources fired, how hard).
  LossTruth sample_truth(util::Xoshiro256& rng) const;

  /// Convert truth to the 260 raw monitor readings (baseline+gain+noise).
  std::vector<double> readings(const LossTruth& truth,
                               util::Xoshiro256& rng) const;

  /// Convert truth to the per-monitor (MI, RR) target probabilities the
  /// model is trained to regress: significance-weighted source fractions.
  std::vector<std::pair<double, double>> targets(const LossTruth& truth) const;

 private:
  std::vector<double> machine_loss(const MachineSpec& spec,
                                   util::Xoshiro256& rng) const;

  MachineConfig config_;
  std::vector<double> gain_;      ///< fixed per-monitor gain (seeded once)
  std::vector<double> pedestal_;  ///< fixed per-monitor pedestal offset
};

}  // namespace reads::blm
