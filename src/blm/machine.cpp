#include "blm/machine.hpp"

#include <cmath>
#include <stdexcept>

namespace reads::blm {

MachineConfig MachineConfig::fermilab_like() {
  MachineConfig cfg;
  cfg.monitors = 260;
  // Interleave source regions around the ring. MI: 8 sources, moderate
  // activity. RR: 10 sources, busier and hotter, so that the mean regressed
  // probability is markedly higher for RR (paper: 0.17 MI vs 0.42 RR).
  cfg.mi.source_positions = {12, 45, 78, 104, 139, 171, 204, 238};
  cfg.mi.event_probability = 0.40;
  cfg.mi.intensity_mu = -0.3;
  cfg.mi.intensity_sigma = 1.0;
  cfg.mi.response_lambda = 6.0;
  cfg.rr.source_positions = {5, 30, 58, 86, 115, 147, 160, 188, 216, 247};
  cfg.rr.event_probability = 0.55;
  cfg.rr.intensity_mu = 0.1;
  cfg.rr.intensity_sigma = 1.0;
  cfg.rr.response_lambda = 7.0;
  cfg.significance_threshold = 0.25;
  cfg.pedestal_spread = 500.0;
  cfg.background_event_scale = 0.01;
  return cfg;
}

MachineConfig MachineConfig::background() const {
  MachineConfig bg = *this;
  bg.mi.event_probability *= background_event_scale;
  bg.rr.event_probability *= background_event_scale;
  return bg;
}

std::uint64_t MachineConfig::fingerprint() const noexcept {
  util::SplitMix64 h(0x5EED);
  std::uint64_t acc = monitors;
  const auto mix = [&acc](std::uint64_t v) {
    util::SplitMix64 s(acc ^ v);
    acc = s.next();
  };
  const auto mixd = [&mix](double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  };
  for (const auto* spec : {&mi, &rr}) {
    for (auto p : spec->source_positions) mix(p);
    mixd(spec->event_probability);
    mixd(spec->intensity_mu);
    mixd(spec->intensity_sigma);
    mixd(spec->response_lambda);
  }
  mixd(baseline);
  mixd(full_scale);
  mixd(pedestal_spread);
  mixd(gain_jitter);
  mixd(noise_sigma);
  mixd(significance_threshold);
  mixd(background_event_scale);
  mix(h.next());
  return acc;
}

MachineModel::MachineModel(MachineConfig config, std::uint64_t seed)
    : config_(std::move(config)) {
  if (config_.monitors == 0) {
    throw std::invalid_argument("MachineModel: zero monitors");
  }
  for (const auto* spec : {&config_.mi, &config_.rr}) {
    for (auto pos : spec->source_positions) {
      if (pos >= config_.monitors) {
        throw std::invalid_argument("MachineModel: source beyond ring");
      }
    }
  }
  // Per-monitor gain spread is a property of the installed hardware: draw it
  // once from a dedicated stream so frames are i.i.d. given the geometry.
  util::Xoshiro256 rng(util::derive_seed(seed, /*purpose=*/0xB1));
  gain_.resize(config_.monitors);
  pedestal_.resize(config_.monitors);
  for (std::size_t m = 0; m < config_.monitors; ++m) {
    gain_[m] = 1.0 + config_.gain_jitter * rng.normal();
    if (gain_[m] < 0.1) gain_[m] = 0.1;
    pedestal_[m] = config_.pedestal_spread * rng.uniform(-1.0, 1.0);
  }
}

std::vector<double> MachineModel::machine_loss(const MachineSpec& spec,
                                               util::Xoshiro256& rng) const {
  std::vector<double> loss(config_.monitors, 0.0);
  const auto ring = static_cast<double>(config_.monitors);
  for (auto pos : spec.source_positions) {
    if (!rng.bernoulli(spec.event_probability)) continue;
    const double intensity =
        rng.lognormal(spec.intensity_mu, spec.intensity_sigma);
    for (std::size_t m = 0; m < config_.monitors; ++m) {
      // Circular distance: the tunnel is a ring.
      double d = std::fabs(static_cast<double>(m) - static_cast<double>(pos));
      d = std::min(d, ring - d);
      loss[m] += intensity * std::exp(-d / spec.response_lambda);
    }
  }
  return loss;
}

LossTruth MachineModel::sample_truth(util::Xoshiro256& rng) const {
  LossTruth truth;
  truth.mi = machine_loss(config_.mi, rng);
  truth.rr = machine_loss(config_.rr, rng);
  return truth;
}

std::vector<double> MachineModel::readings(const LossTruth& truth,
                                           util::Xoshiro256& rng) const {
  std::vector<double> r(config_.monitors);
  const double span = config_.full_scale - config_.baseline;
  for (std::size_t m = 0; m < config_.monitors; ++m) {
    const double blended = truth.mi[m] + truth.rr[m];
    r[m] = config_.baseline + pedestal_[m] + gain_[m] * span * blended +
           config_.noise_sigma * rng.normal();
  }
  return r;
}

std::vector<std::pair<double, double>> MachineModel::targets(
    const LossTruth& truth) const {
  std::vector<std::pair<double, double>> t(config_.monitors);
  const double threshold = config_.significance_threshold;
  for (std::size_t m = 0; m < config_.monitors; ++m) {
    const double total = truth.mi[m] + truth.rr[m];
    // Significance gates attribution: a quiet monitor should output ~0 for
    // both machines rather than a confident 50/50 split of noise.
    const double significance = total / (total + threshold);
    if (total <= 0.0) {
      t[m] = {0.0, 0.0};
      continue;
    }
    t[m] = {significance * truth.mi[m] / total,
            significance * truth.rr[m] / total};
  }
  return t;
}

}  // namespace reads::blm
