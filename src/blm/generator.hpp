// Frame generator: turns the machine model into a stream of (raw frame,
// target) pairs shaped for the U-Net ((monitors, 1) in, (monitors, 2) out).
#pragma once

#include <cstdint>

#include "blm/machine.hpp"
#include "tensor/tensor.hpp"

namespace reads::blm {

using tensor::Tensor;

struct BlmFrame {
  Tensor raw;      ///< (monitors, 1) raw readings, ~105k–120k magnitudes
  Tensor target;   ///< (monitors, 2) ground-truth (MI, RR) probabilities
};

class FrameGenerator {
 public:
  FrameGenerator(MachineConfig config, std::uint64_t seed);

  const MachineModel& machine() const noexcept { return machine_; }

  BlmFrame next();

 private:
  MachineModel machine_;
  util::Xoshiro256 rng_;
};

}  // namespace reads::blm
