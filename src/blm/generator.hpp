// Frame generator: turns the machine model into a stream of (raw frame,
// target) pairs shaped for the U-Net ((monitors, 1) in, (monitors, 2) out).
//
// Machine drift: a deployed de-blender must survive the optics and
// apertures changing under it, so the generator can apply a deterministic
// drift schedule — a slow rotation of the loss-source geometry around the
// ring (the response matrix the model learned shifts monitor-by-monitor)
// plus loss-rate and intensity shifts. The schedule is a pure function of
// (seed, frame index): replaying the same seed replays the same drifted
// stream bit-for-bit, and a disabled schedule leaves the generator
// bit-identical to the pre-drift implementation (regression-tested).
#pragma once

#include <cstdint>

#include "blm/machine.hpp"
#include "tensor/tensor.hpp"

namespace reads::blm {

using tensor::Tensor;

struct BlmFrame {
  Tensor raw;      ///< (monitors, 1) raw readings, ~105k–120k magnitudes
  Tensor target;   ///< (monitors, 2) ground-truth (MI, RR) probabilities
};

/// Deterministic machine-drift schedule, applied from `onset_frame` on.
/// Rates are per 1000 frames (~3 s of the paper's 320 fps stream per unit),
/// so default-magnitude drift plays out over minutes of machine time.
struct DriftSchedule {
  bool enabled = false;
  std::size_t onset_frame = 0;
  /// Loss-source positions rotate around the ring at this rate
  /// (monitors per 1000 frames) — the response-matrix rotation.
  double rotation_monitors_per_kframe = 0.0;
  /// Multiplicative event-probability shift per 1000 frames
  /// (0.5 = +50% loss rate after 1000 drifted frames; clamped to [0, 1]).
  double event_rate_shift_per_kframe = 0.0;
  /// Additive shift of the lognormal intensity mu per 1000 frames.
  double intensity_shift_per_kframe = 0.0;

  bool active() const noexcept {
    return enabled && (rotation_monitors_per_kframe != 0.0 ||
                       event_rate_shift_per_kframe != 0.0 ||
                       intensity_shift_per_kframe != 0.0);
  }
};

class FrameGenerator {
 public:
  FrameGenerator(MachineConfig config, std::uint64_t seed,
                 DriftSchedule drift = {});

  const MachineModel& machine() const noexcept { return machine_; }
  const DriftSchedule& drift() const noexcept { return drift_; }
  std::size_t frames_generated() const noexcept { return frame_index_; }

  /// The drifted machine configuration the next frame will be sampled from
  /// (equals the constructor config while drift is inactive).
  MachineConfig effective_config() const;

  BlmFrame next();

 private:
  MachineConfig base_config_;
  std::uint64_t machine_seed_;
  DriftSchedule drift_;
  MachineModel machine_;
  util::Xoshiro256 rng_;
  std::size_t frame_index_ = 0;
};

}  // namespace reads::blm
