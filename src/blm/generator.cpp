#include "blm/generator.hpp"

namespace reads::blm {

FrameGenerator::FrameGenerator(MachineConfig config, std::uint64_t seed)
    : machine_(std::move(config), seed),
      rng_(util::derive_seed(seed, /*purpose=*/0xF2)) {}

BlmFrame FrameGenerator::next() {
  const auto truth = machine_.sample_truth(rng_);
  const auto readings = machine_.readings(truth, rng_);
  const auto targets = machine_.targets(truth);
  const std::size_t n = machine_.config().monitors;
  BlmFrame frame{Tensor({n, 1}), Tensor({n, 2})};
  for (std::size_t m = 0; m < n; ++m) {
    frame.raw[m] = static_cast<float>(readings[m]);
    frame.target[m * 2 + 0] = static_cast<float>(targets[m].first);
    frame.target[m * 2 + 1] = static_cast<float>(targets[m].second);
  }
  return frame;
}

}  // namespace reads::blm
