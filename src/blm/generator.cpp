#include "blm/generator.hpp"

#include <algorithm>
#include <cmath>

namespace reads::blm {

FrameGenerator::FrameGenerator(MachineConfig config, std::uint64_t seed,
                               DriftSchedule drift)
    : base_config_(config),
      machine_seed_(seed),
      drift_(drift),
      machine_(std::move(config), seed),
      rng_(util::derive_seed(seed, /*purpose=*/0xF2)) {}

MachineConfig FrameGenerator::effective_config() const {
  if (!drift_.active() || frame_index_ < drift_.onset_frame) {
    return base_config_;
  }
  const double kframes =
      static_cast<double>(frame_index_ - drift_.onset_frame) / 1000.0;
  MachineConfig cfg = base_config_;
  const auto ring = static_cast<double>(cfg.monitors);
  const double offset = drift_.rotation_monitors_per_kframe * kframes;
  const double rate_factor =
      1.0 + drift_.event_rate_shift_per_kframe * kframes;
  const double mu_shift = drift_.intensity_shift_per_kframe * kframes;
  for (auto* spec : {&cfg.mi, &cfg.rr}) {
    for (auto& pos : spec->source_positions) {
      const double rotated =
          std::fmod(static_cast<double>(pos) + offset, ring);
      pos = static_cast<std::size_t>(std::llround(rotated)) % cfg.monitors;
    }
    spec->event_probability =
        std::clamp(spec->event_probability * rate_factor, 0.0, 1.0);
    spec->intensity_mu += mu_shift;
  }
  return cfg;
}

BlmFrame FrameGenerator::next() {
  if (drift_.active() && frame_index_ >= drift_.onset_frame) {
    // Rebuild the machine whenever the drifted configuration moved. The
    // machine seed is unchanged — installed per-monitor gains and pedestals
    // are hardware, not optics — so only the loss geometry and statistics
    // drift. The event RNG stream (rng_) is independent of the rebuild,
    // which keeps the schedule a pure function of (seed, frame index).
    auto cfg = effective_config();
    if (cfg.fingerprint() != machine_.config().fingerprint()) {
      machine_ = MachineModel(std::move(cfg), machine_seed_);
    }
  }
  ++frame_index_;
  const auto truth = machine_.sample_truth(rng_);
  const auto readings = machine_.readings(truth, rng_);
  const auto targets = machine_.targets(truth);
  const std::size_t n = machine_.config().monitors;
  BlmFrame frame{Tensor({n, 1}), Tensor({n, 2})};
  for (std::size_t m = 0; m < n; ++m) {
    frame.raw[m] = static_cast<float>(readings[m]);
    frame.target[m * 2 + 0] = static_cast<float>(targets[m].first);
    frame.target[m * 2 + 1] = static_cast<float>(targets[m].second);
  }
  return frame;
}

}  // namespace reads::blm
