#include "blm/data.hpp"

namespace reads::blm {

train::Standardizer fit_background_standardizer(std::uint64_t seed,
                                                const MachineConfig& config,
                                                std::size_t frames) {
  // The facility's normalization constants come from the long-run (mostly
  // quiet) monitoring stream, with one global scale for the whole BLM
  // array. Loss-event frames therefore standardize to values tens to
  // hundreds of units from zero — the wide dynamic range that shaped the
  // paper's precision strategy. The same machine seed keeps the installed
  // pedestals/gains identical between the background and event streams.
  FrameGenerator bg(config.background(), seed);
  std::vector<tensor::Tensor> raw;
  raw.reserve(frames);
  for (std::size_t i = 0; i < frames; ++i) raw.push_back(bg.next().raw);
  train::Standardizer st;
  st.fit_global(raw);
  return st;
}

BuiltData build_data(std::size_t count, std::uint64_t seed,
                     InputScaling scaling, const MachineConfig& config) {
  FrameGenerator gen(config, seed);
  train::Dataset ds;
  for (std::size_t i = 0; i < count; ++i) {
    auto frame = gen.next();
    ds.add(std::move(frame.raw), std::move(frame.target));
  }
  BuiltData built;
  built.scaling = scaling;
  built.standardizer =
      fit_background_standardizer(seed, config, std::max<std::size_t>(count, 128));
  if (scaling == InputScaling::kStandardized) {
    for (auto& input : ds.inputs) input = built.standardizer.transform(input);
  }
  built.dataset = std::move(ds);
  return built;
}

TargetStats compute_target_stats(std::size_t count, std::uint64_t seed,
                                 const MachineConfig& config) {
  FrameGenerator gen(config, seed);
  std::vector<tensor::Tensor> raw;
  std::vector<tensor::Tensor> targets;
  raw.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto f = gen.next();
    raw.push_back(std::move(f.raw));
    targets.push_back(std::move(f.target));
  }
  const auto st = fit_background_standardizer(seed, config,
                                              std::max<std::size_t>(count, 128));
  TargetStats stats;
  double sum_mi = 0.0;
  double sum_rr = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const auto& t = targets[i];
    for (std::size_t m = 0; m < t.dim(0); ++m) {
      sum_mi += t.at(m, 0);
      sum_rr += t.at(m, 1);
      ++n;
    }
    stats.max_standardized_input = std::max<double>(
        stats.max_standardized_input, st.transform(raw[i]).max_abs());
  }
  stats.mean_mi = sum_mi / static_cast<double>(n);
  stats.mean_rr = sum_rr / static_cast<double>(n);
  return stats;
}

std::vector<tensor::Tensor> build_eval_inputs(
    std::size_t count, std::uint64_t seed,
    const train::Standardizer& standardizer, const MachineConfig& config) {
  FrameGenerator gen(config, seed);
  std::vector<tensor::Tensor> inputs;
  inputs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    inputs.push_back(standardizer.transform(gen.next().raw));
  }
  return inputs;
}

}  // namespace reads::blm
