#include "hls/latency.hpp"

#include <cmath>

namespace reads::hls {

LatencyModel::LatencyModel(LatencyModelParams params) : params_(params) {}

LatencyReport LatencyModel::estimate(const FirmwareModel& fw) const {
  LatencyReport report;
  report.clock_mhz = fw.config.clock_mhz;

  for (std::size_t i = 1; i < fw.layers.size(); ++i) {
    const auto& l = fw.layers[i];
    double cycles = 0.0;
    if (l.instantiated_mults > 0) {
      cycles += std::ceil(static_cast<double>(l.total_macs()) /
                          static_cast<double>(l.instantiated_mults));
      cycles += params_.per_position_overhead * static_cast<double>(l.positions);
      const double fan_in = std::max<double>(
          1.0, static_cast<double>(l.kind == LayerKind::kConv1D
                                       ? l.kernel * l.in_channels
                                       : l.in_channels));
      cycles += params_.base_depth + std::ceil(std::log2(fan_in + 1.0));
    } else {
      cycles += static_cast<double>(l.positions);
      cycles += params_.base_depth * 0.25;
    }
    LayerLatency ll;
    ll.name = l.name;
    ll.cycles = static_cast<std::size_t>(std::llround(cycles));
    report.compute_cycles += ll.cycles;
    report.layers.push_back(std::move(ll));
  }

  report.io_cycles = static_cast<std::size_t>(std::llround(
      params_.io_cycles_per_word *
      static_cast<double>(fw.input_values + fw.output_values)));
  report.total_cycles = report.compute_cycles + report.io_cycles;
  return report;
}

}  // namespace reads::hls
