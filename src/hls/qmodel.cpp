#include "hls/qmodel.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <stdexcept>

#include "hls/accum.hpp"
#include "hls/qkernels.hpp"
#include "util/arena.hpp"
#include "util/thread_pool.hpp"

namespace reads::hls {

namespace {

using detail::Accum;
using detail::Requant;

int frac_bits(const FixedSpec& spec) noexcept {
  return spec.width - spec.int_bits;
}

}  // namespace

namespace {

std::size_t words_i16(std::size_t count) {
  return (count * sizeof(std::int16_t) + sizeof(std::int64_t) - 1) /
         sizeof(std::int64_t);
}

std::size_t words_i32(std::size_t count) {
  return (count * sizeof(std::int32_t) + sizeof(std::int64_t) - 1) /
         sizeof(std::int64_t);
}

}  // namespace

QuantizedModel::QuantizedModel(FirmwareModel firmware)
    : fw_(std::move(firmware)), lanes_(prove_lanes(fw_)) {
  io_.reserve(fw_.layers.size());
  act_offset_.reserve(fw_.layers.size());
  plans_.resize(fw_.layers.size());
  sigmoid_tables_.resize(fw_.layers.size());
  for (std::size_t i = 0; i < fw_.layers.size(); ++i) {
    const auto& l = fw_.layers[i];
    io_.push_back({l.positions, l.out_channels});
    act_offset_.push_back(act_words_);
    act_words_ += l.positions * l.out_channels;
    if (l.kind == LayerKind::kSigmoid) {
      auto& table = sigmoid_tables_[i];
      table.resize(kSigmoidTableSize);
      const auto out_fmt = l.quant.activation.format();
      for (std::size_t b = 0; b < kSigmoidTableSize; ++b) {
        const double x = -kSigmoidRange +
                         (static_cast<double>(b) + 0.5) * 2.0 * kSigmoidRange /
                             static_cast<double>(kSigmoidTableSize);
        table[b] = out_fmt.quantize(1.0 / (1.0 + std::exp(-x)));
      }
    }
    if (l.kind == LayerKind::kDense || l.kind == LayerKind::kConv1D) {
      const auto& src0 = fw_.layers[l.inputs[0]];
      const Accum ac(l.quant.activation,
                     frac_bits(l.quant.weight) +
                         frac_bits(src0.quant.activation),
                     l.bias_frac_bits, fw_.config.quant.accum_guard_bits);
      auto& plan = plans_[i];
      // prod_shift >= 0 by construction (the accumulator never carries more
      // fraction bits than the product); the check keeps the kernel contract
      // explicit and falls back to the reference loop otherwise.
      plan.use_kernel = ac.prod_shift >= 0;
      if (!plan.use_kernel) continue;
      const std::size_t k = l.kind == LayerKind::kDense ? 1 : l.kernel;
      plan.lane = lanes_.decisions[i].lane;
      if (plan.lane == Lane::kWide64) {
        plan.wtr.resize(k * l.in_channels * l.out_channels);
        for (std::size_t o = 0; o < l.out_channels; ++o) {
          for (std::size_t dk = 0; dk < k; ++dk) {
            for (std::size_t c = 0; c < l.in_channels; ++c) {
              plan.wtr[(dk * l.in_channels + c) * l.out_channels + o] =
                  l.weights_raw[(o * k + dk) * l.in_channels + c];
            }
          }
        }
        plan.bias_acc.resize(l.out_channels);
        for (std::size_t o = 0; o < l.out_channels; ++o) {
          plan.bias_acc[o] = ac.bias(l.bias_raw[o]);
        }
        continue;
      }
      // Narrow lane: the prover certified weights/activations fit int16 and
      // every partial sum fits int32, so the downcasts below are exact.
      plan.out_pad = (l.out_channels + 15) & ~std::size_t{15};
      if (plan.lane == Lane::kNarrow32) {
        plan.in_stride = l.in_channels;
        plan.wtr16.assign(k * l.in_channels * plan.out_pad, 0);
        for (std::size_t o = 0; o < l.out_channels; ++o) {
          for (std::size_t dk = 0; dk < k; ++dk) {
            for (std::size_t c = 0; c < l.in_channels; ++c) {
              plan.wtr16[(dk * l.in_channels + c) * plan.out_pad + o] =
                  static_cast<std::int16_t>(
                      l.weights_raw[(o * k + dk) * l.in_channels + c]);
            }
          }
        }
      } else {  // kNarrowDp: pair-interleaved, odd channel zero-padded
        const std::size_t in_pairs = (l.in_channels + 1) / 2;
        plan.in_stride = 2 * in_pairs;
        plan.wtr16.assign(k * in_pairs * plan.out_pad * 2, 0);
        for (std::size_t o = 0; o < l.out_channels; ++o) {
          for (std::size_t dk = 0; dk < k; ++dk) {
            for (std::size_t c = 0; c < l.in_channels; ++c) {
              plan.wtr16[((dk * in_pairs + c / 2) * plan.out_pad + o) * 2 +
                         c % 2] =
                  static_cast<std::int16_t>(
                      l.weights_raw[(o * k + dk) * l.in_channels + c]);
            }
          }
        }
      }
      plan.bias32.assign(plan.out_pad, 0);
      for (std::size_t o = 0; o < l.out_channels; ++o) {
        plan.bias32[o] = static_cast<std::int32_t>(ac.bias(l.bias_raw[o]));
      }
      narrow_words_ =
          std::max(narrow_words_, words_i16(l.positions * plan.in_stride) +
                                      words_i32(l.positions * plan.out_pad));
    }
  }
}

std::vector<std::int64_t> QuantizedModel::quantize_input(
    const Tensor& input) const {
  if (input.numel() != fw_.input_values) {
    throw std::invalid_argument("QuantizedModel: input size mismatch");
  }
  const auto fmt = fw_.input_spec.format(fixed::QuantMode::kRound);
  std::vector<std::int64_t> raw;
  raw.reserve(input.numel());
  for (std::size_t i = 0; i < input.numel(); ++i) {
    raw.push_back(fmt.quantize(input[i]));
  }
  return raw;
}

Tensor QuantizedModel::dequantize_output(
    const std::vector<std::int64_t>& raw) const {
  const auto& out = fw_.layers.back();
  if (raw.size() != fw_.output_values) {
    throw std::invalid_argument("QuantizedModel: output size mismatch");
  }
  const auto fmt = fw_.output_spec.format();
  Tensor t({out.positions, out.out_channels});
  for (std::size_t i = 0; i < raw.size(); ++i) {
    t[i] = static_cast<float>(fmt.to_double(raw[i]));
  }
  return t;
}

void QuantizedModel::prepare_stats(ForwardStats* stats) const {
  if (!stats) return;
  if (stats->saturations.size() != fw_.layers.size()) {
    stats->saturations.assign(fw_.layers.size(), 0);
  }
  if (stats->overflows.size() != fw_.layers.size()) {
    stats->overflows.assign(fw_.layers.size(), 0);
  }
}

Tensor QuantizedModel::forward(const Tensor& input, ForwardStats* stats) const {
  Tensor t;
  forward_into(input, t, stats);
  return t;
}

void QuantizedModel::forward_into(const Tensor& input, Tensor& out,
                                  ForwardStats* stats) const {
  if (input.numel() != fw_.input_values) {
    throw std::invalid_argument("QuantizedModel: input size mismatch");
  }
  prepare_stats(stats);
  auto& arena = util::ScratchArena::local();
  util::ArenaScope scope(arena);
  arena.require<std::int64_t>(act_words_ + narrow_words_);
  auto block = arena.alloc<std::int64_t>(act_words_);
  const auto in_fmt = fw_.input_spec.format(fixed::QuantMode::kRound);
  for (std::size_t i = 0; i < input.numel(); ++i) {
    block[i] = in_fmt.quantize(input[i]);
  }
  const std::int64_t* out_raw = execute(block.data(), stats);
  const auto& out_layer = fw_.layers.back();
  const auto out_fmt = fw_.output_spec.format();
  out.resize({out_layer.positions, out_layer.out_channels});
  for (std::size_t i = 0; i < fw_.output_values; ++i) {
    out[i] = static_cast<float>(out_fmt.to_double(out_raw[i]));
  }
}

std::vector<Tensor> QuantizedModel::forward_batch(std::span<const Tensor> inputs,
                                                  ForwardStats* stats,
                                                  util::Exec exec) const {
  prepare_stats(stats);
  std::vector<Tensor> outputs(inputs.size());
  std::mutex mutex;
  util::parallel_for(
      0, inputs.size(),
      [&](std::size_t f) {
        ForwardStats local;
        outputs[f] = forward(inputs[f], stats ? &local : nullptr);
        if (stats) {
          std::lock_guard lock(mutex);
          for (std::size_t i = 0; i < local.saturations.size(); ++i) {
            stats->saturations[i] += local.saturations[i];
            stats->overflows[i] += local.overflows[i];
          }
        }
      },
      exec);
  return outputs;
}

std::vector<std::int64_t> QuantizedModel::forward_raw(
    const std::vector<std::int64_t>& input_raw, ForwardStats* stats) const {
  if (input_raw.size() != fw_.input_values) {
    throw std::invalid_argument("QuantizedModel: raw input size mismatch");
  }
  prepare_stats(stats);
  auto& arena = util::ScratchArena::local();
  util::ArenaScope scope(arena);
  arena.require<std::int64_t>(act_words_ + narrow_words_);
  auto block = arena.alloc<std::int64_t>(act_words_);
  std::copy(input_raw.begin(), input_raw.end(), block.data());
  const std::int64_t* out = execute(block.data(), stats);
  return {out, out + fw_.output_values};
}

const std::int64_t* QuantizedModel::execute(std::int64_t* acts,
                                            ForwardStats* stats) const {
  for (std::size_t i = 1; i < fw_.layers.size(); ++i) {
    run_layer_fast(i, acts, stats);
  }
  return acts + act_offset_.back();
}

void QuantizedModel::run_layer_fast(std::size_t idx, std::int64_t* acts,
                                    ForwardStats* stats) const {
  const auto& l = fw_.layers[idx];
  const std::int64_t* in0 = acts + act_offset_[l.inputs[0]];
  std::int64_t* out = acts + act_offset_[idx];
  const auto& src0 = fw_.layers[l.inputs[0]];
  const int in_frac = frac_bits(src0.quant.activation);
  const std::size_t n = l.positions * l.out_channels;
  std::size_t sat = 0;
  std::size_t ovf = 0;

  switch (l.kind) {
    case LayerKind::kInput:
      throw std::logic_error("run_layer on input node");

    case LayerKind::kDense:
    case LayerKind::kConv1D: {
      const Accum ac(l.quant.activation, frac_bits(l.quant.weight) + in_frac,
                     l.bias_frac_bits, fw_.config.quant.accum_guard_bits);
      const auto& plan = plans_[idx];
      if (plan.use_kernel && plan.lane != Lane::kWide64) {
        // Narrow lane (prover-certified): copy the source slab down to
        // int16 once, accumulate in int32, finalize through the shared
        // Accum — the int32 sums equal the exact int64 sums by the proof,
        // so outputs and stats counters are bit-identical to the wide path.
        const std::size_t k = l.kind == LayerKind::kDense ? 1 : l.kernel;
        auto& arena = util::ScratchArena::local();
        util::ArenaScope narrow_scope(arena);
        auto x16 = arena.alloc<std::int16_t>(l.positions * plan.in_stride);
        auto acc32 = arena.alloc<std::int32_t>(l.positions * plan.out_pad);
        for (std::size_t p = 0; p < l.positions; ++p) {
          const std::int64_t* src = in0 + p * l.in_channels;
          std::int16_t* dst = x16.data() + p * plan.in_stride;
          for (std::size_t i = 0; i < l.in_channels; ++i) {
            dst[i] = static_cast<std::int16_t>(src[i]);
          }
          for (std::size_t i = l.in_channels; i < plan.in_stride; ++i) {
            dst[i] = 0;
          }
        }
        if (plan.lane == Lane::kNarrowDp) {
          kernels::conv1d_acc_i16_dp(x16.data(), plan.wtr16.data(),
                                     plan.bias32.data(), acc32.data(),
                                     l.positions, plan.in_stride / 2,
                                     plan.in_stride, l.out_channels,
                                     plan.out_pad, k);
        } else {
          kernels::conv1d_acc_i16(x16.data(), plan.wtr16.data(),
                                  plan.bias32.data(), acc32.data(),
                                  l.positions, l.in_channels, plan.in_stride,
                                  l.out_channels, plan.out_pad, k,
                                  ac.prod_shift);
        }
        kernels::finalize_i32(acc32.data(), out, l.positions, l.out_channels,
                              plan.out_pad, ac, ovf, sat);
        break;
      }
      if (plan.use_kernel) {
        const std::size_t k = l.kind == LayerKind::kDense ? 1 : l.kernel;
        kernels::conv1d_acc(in0, plan.wtr.data(), plan.bias_acc.data(), out,
                            l.positions, l.in_channels, l.out_channels, k,
                            ac.prod_shift);
        for (std::size_t j = 0; j < n; ++j) {
          out[j] = ac.finalize(out[j], ovf, sat);
        }
        break;
      }
      // Defensive fallback (negative product shift): reference loop nest.
      const std::size_t in_ch = l.in_channels;
      const std::size_t out_ch = l.out_channels;
      const std::size_t k = l.kind == LayerKind::kDense ? 1 : l.kernel;
      const auto pad = static_cast<std::ptrdiff_t>(k / 2);
      const auto positions = static_cast<std::ptrdiff_t>(l.positions);
      for (std::size_t p = 0; p < l.positions; ++p) {
        std::int64_t* yp = out + p * out_ch;
        for (std::size_t o = 0; o < out_ch; ++o) {
          std::int64_t acc = ac.bias(l.bias_raw[o]);
          for (std::size_t dk = 0; dk < k; ++dk) {
            const std::ptrdiff_t q = static_cast<std::ptrdiff_t>(p + dk) - pad;
            if (q < 0 || q >= positions) continue;
            const std::int64_t* xq = in0 + static_cast<std::size_t>(q) * in_ch;
            const std::int64_t* wk =
                l.weights_raw.data() + (o * k + dk) * in_ch;
            for (std::size_t i = 0; i < in_ch; ++i) {
              acc += ac.term(wk[i] * xq[i]);
            }
          }
          yp[o] = ac.finalize(acc, ovf, sat);
        }
      }
      break;
    }

    case LayerKind::kBatchNorm: {
      const Accum ac(l.quant.activation, frac_bits(l.quant.weight) + in_frac,
                     l.bias_frac_bits, fw_.config.quant.accum_guard_bits);
      for (std::size_t p = 0; p < l.positions; ++p) {
        for (std::size_t c = 0; c < l.out_channels; ++c) {
          const std::int64_t acc =
              ac.term(l.weights_raw[c] * in0[p * l.out_channels + c]) +
              ac.bias(l.bias_raw[c]);
          out[p * l.out_channels + c] = ac.finalize(acc, ovf, sat);
        }
      }
      break;
    }

    case LayerKind::kMaxPool: {
      const Requant rq(in_frac, l.quant.activation);
      const std::size_t ch = l.out_channels;
      for (std::size_t p = 0; p < l.positions; ++p) {
        for (std::size_t c = 0; c < ch; ++c) {
          std::int64_t m = in0[(p * l.factor) * ch + c];
          for (std::size_t d = 1; d < l.factor; ++d) {
            m = std::max(m, in0[(p * l.factor + d) * ch + c]);
          }
          out[p * ch + c] = rq.apply(m, sat);
        }
      }
      break;
    }

    case LayerKind::kUpSample: {
      const Requant rq(in_frac, l.quant.activation);
      const std::size_t ch = l.out_channels;
      const std::size_t in_pos = l.positions / l.factor;
      if (in_pos * l.factor != l.positions) {
        std::fill(out, out + n, std::int64_t{0});
      }
      // Requant each source row once and replicate it; the reference
      // requants every replica separately, so the row's saturation count
      // scales by the replication factor to keep ForwardStats identical.
      for (std::size_t p = 0; p < in_pos; ++p) {
        std::int64_t* row = out + (p * l.factor) * ch;
        std::size_t row_sat = 0;
        kernels::requant_i64(in0 + p * ch, row, ch, rq, /*relu=*/false,
                             row_sat);
        for (std::size_t d = 1; d < l.factor; ++d) {
          std::copy(row, row + ch, row + d * ch);
        }
        sat += row_sat * l.factor;
      }
      break;
    }

    case LayerKind::kConcat: {
      const std::int64_t* in1 = acts + act_offset_[l.inputs[1]];
      const auto& src1 = fw_.layers[l.inputs[1]];
      const Requant rq0(in_frac, l.quant.activation);
      const Requant rq1(frac_bits(src1.quant.activation), l.quant.activation);
      const std::size_t c0 = src0.out_channels;
      const std::size_t c1 = src1.out_channels;
      for (std::size_t p = 0; p < l.positions; ++p) {
        std::int64_t* yp = out + p * (c0 + c1);
        kernels::requant_i64(in0 + p * c0, yp, c0, rq0, /*relu=*/false, sat);
        kernels::requant_i64(in1 + p * c1, yp + c0, c1, rq1, /*relu=*/false,
                             sat);
      }
      break;
    }

    case LayerKind::kRelu: {
      const Requant rq(in_frac, l.quant.activation);
      kernels::requant_i64(in0, out, n, rq, /*relu=*/true, sat);
      break;
    }

    case LayerKind::kSigmoid: {
      const auto& table = sigmoid_tables_[idx];
      const double scale = std::ldexp(1.0, -in_frac);
      const double buckets_per_unit =
          static_cast<double>(kSigmoidTableSize) / (2.0 * kSigmoidRange);
      for (std::size_t i = 0; i < n; ++i) {
        const double x = static_cast<double>(in0[i]) * scale;
        auto b = static_cast<std::ptrdiff_t>(
            std::floor((x + kSigmoidRange) * buckets_per_unit));
        b = std::clamp<std::ptrdiff_t>(
            b, 0, static_cast<std::ptrdiff_t>(kSigmoidTableSize) - 1);
        out[i] = table[static_cast<std::size_t>(b)];
      }
      break;
    }

    case LayerKind::kFlatten: {
      const Requant rq(in_frac, l.quant.activation);
      kernels::requant_i64(in0, out, n, rq, /*relu=*/false, sat);
      break;
    }
  }

  if (stats) {
    stats->saturations[idx] += sat;
    stats->overflows[idx] += ovf;
  }
}

// ---------------------------------------------------------------------------
// Reference (seed) executor, kept verbatim as the bit-exactness oracle.
// ---------------------------------------------------------------------------

void QuantizedModel::run_layer_reference(
    std::size_t idx, const std::vector<std::vector<std::int64_t>>& acts,
    std::vector<std::int64_t>& out, ForwardStats* stats) const {
  const auto& l = fw_.layers[idx];
  const auto& in0 = acts[l.inputs[0]];
  const auto& src0 = fw_.layers[l.inputs[0]];
  const int in_frac = frac_bits(src0.quant.activation);
  std::size_t sat = 0;
  std::size_t ovf = 0;
  out.assign(l.positions * l.out_channels, 0);

  switch (l.kind) {
    case LayerKind::kInput:
      throw std::logic_error("run_layer on input node");

    case LayerKind::kDense: {
      const Accum ac(l.quant.activation, frac_bits(l.quant.weight) + in_frac,
                     l.bias_frac_bits, fw_.config.quant.accum_guard_bits);
      const std::size_t in_ch = l.in_channels;
      const std::size_t out_ch = l.out_channels;
      for (std::size_t p = 0; p < l.positions; ++p) {
        const std::int64_t* xp = in0.data() + p * in_ch;
        std::int64_t* yp = out.data() + p * out_ch;
        for (std::size_t o = 0; o < out_ch; ++o) {
          const std::int64_t* wo = l.weights_raw.data() + o * in_ch;
          std::int64_t acc = ac.bias(l.bias_raw[o]);
          for (std::size_t i = 0; i < in_ch; ++i) acc += ac.term(wo[i] * xp[i]);
          yp[o] = ac.finalize(acc, ovf, sat);
        }
      }
      break;
    }

    case LayerKind::kConv1D: {
      const Accum ac(l.quant.activation, frac_bits(l.quant.weight) + in_frac,
                     l.bias_frac_bits, fw_.config.quant.accum_guard_bits);
      const std::size_t in_ch = l.in_channels;
      const std::size_t out_ch = l.out_channels;
      const std::size_t k = l.kernel;
      const auto pad = static_cast<std::ptrdiff_t>(k / 2);
      const auto positions = static_cast<std::ptrdiff_t>(l.positions);
      for (std::size_t p = 0; p < l.positions; ++p) {
        std::int64_t* yp = out.data() + p * out_ch;
        for (std::size_t o = 0; o < out_ch; ++o) {
          std::int64_t acc = ac.bias(l.bias_raw[o]);
          for (std::size_t dk = 0; dk < k; ++dk) {
            const std::ptrdiff_t q = static_cast<std::ptrdiff_t>(p + dk) - pad;
            if (q < 0 || q >= positions) continue;
            const std::int64_t* xq =
                in0.data() + static_cast<std::size_t>(q) * in_ch;
            const std::int64_t* wk =
                l.weights_raw.data() + (o * k + dk) * in_ch;
            for (std::size_t i = 0; i < in_ch; ++i) {
              acc += ac.term(wk[i] * xq[i]);
            }
          }
          yp[o] = ac.finalize(acc, ovf, sat);
        }
      }
      break;
    }

    case LayerKind::kBatchNorm: {
      const Accum ac(l.quant.activation, frac_bits(l.quant.weight) + in_frac,
                     l.bias_frac_bits, fw_.config.quant.accum_guard_bits);
      for (std::size_t p = 0; p < l.positions; ++p) {
        for (std::size_t c = 0; c < l.out_channels; ++c) {
          const std::int64_t acc =
              ac.term(l.weights_raw[c] * in0[p * l.out_channels + c]) +
              ac.bias(l.bias_raw[c]);
          out[p * l.out_channels + c] = ac.finalize(acc, ovf, sat);
        }
      }
      break;
    }

    case LayerKind::kMaxPool: {
      const Requant rq(in_frac, l.quant.activation);
      const std::size_t ch = l.out_channels;
      for (std::size_t p = 0; p < l.positions; ++p) {
        for (std::size_t c = 0; c < ch; ++c) {
          std::int64_t m = in0[(p * l.factor) * ch + c];
          for (std::size_t d = 1; d < l.factor; ++d) {
            m = std::max(m, in0[(p * l.factor + d) * ch + c]);
          }
          out[p * ch + c] = rq.apply(m, sat);
        }
      }
      break;
    }

    case LayerKind::kUpSample: {
      const Requant rq(in_frac, l.quant.activation);
      const std::size_t ch = l.out_channels;
      const std::size_t in_pos = l.positions / l.factor;
      for (std::size_t p = 0; p < in_pos; ++p) {
        for (std::size_t d = 0; d < l.factor; ++d) {
          for (std::size_t c = 0; c < ch; ++c) {
            out[(p * l.factor + d) * ch + c] = rq.apply(in0[p * ch + c], sat);
          }
        }
      }
      break;
    }

    case LayerKind::kConcat: {
      const auto& in1 = acts[l.inputs[1]];
      const auto& src1 = fw_.layers[l.inputs[1]];
      const Requant rq0(in_frac, l.quant.activation);
      const Requant rq1(frac_bits(src1.quant.activation), l.quant.activation);
      const std::size_t c0 = src0.out_channels;
      const std::size_t c1 = src1.out_channels;
      for (std::size_t p = 0; p < l.positions; ++p) {
        for (std::size_t c = 0; c < c0; ++c) {
          out[p * (c0 + c1) + c] = rq0.apply(in0[p * c0 + c], sat);
        }
        for (std::size_t c = 0; c < c1; ++c) {
          out[p * (c0 + c1) + c0 + c] = rq1.apply(in1[p * c1 + c], sat);
        }
      }
      break;
    }

    case LayerKind::kRelu: {
      const Requant rq(in_frac, l.quant.activation);
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = rq.apply(std::max<std::int64_t>(0, in0[i]), sat);
      }
      break;
    }

    case LayerKind::kSigmoid: {
      const auto& table = sigmoid_tables_[idx];
      const double scale = std::ldexp(1.0, -in_frac);
      const double buckets_per_unit =
          static_cast<double>(kSigmoidTableSize) / (2.0 * kSigmoidRange);
      for (std::size_t i = 0; i < out.size(); ++i) {
        const double x = static_cast<double>(in0[i]) * scale;
        auto b = static_cast<std::ptrdiff_t>(
            std::floor((x + kSigmoidRange) * buckets_per_unit));
        b = std::clamp<std::ptrdiff_t>(
            b, 0, static_cast<std::ptrdiff_t>(kSigmoidTableSize) - 1);
        out[i] = table[static_cast<std::size_t>(b)];
      }
      break;
    }

    case LayerKind::kFlatten: {
      const Requant rq(in_frac, l.quant.activation);
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = rq.apply(in0[i], sat);
      }
      break;
    }
  }

  if (stats) {
    stats->saturations[idx] += sat;
    stats->overflows[idx] += ovf;
  }
}

std::vector<std::int64_t> QuantizedModel::forward_raw_reference(
    const std::vector<std::int64_t>& input_raw, ForwardStats* stats) const {
  if (input_raw.size() != fw_.input_values) {
    throw std::invalid_argument("QuantizedModel: raw input size mismatch");
  }
  prepare_stats(stats);
  std::vector<std::vector<std::int64_t>> acts(fw_.layers.size());
  acts[0] = input_raw;
  for (std::size_t i = 1; i < fw_.layers.size(); ++i) {
    run_layer_reference(i, acts, acts[i], stats);
  }
  return acts.back();
}

}  // namespace reads::hls
