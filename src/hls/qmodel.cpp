#include "hls/qmodel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace reads::hls {

namespace {

/// Precomputed re-quantizer: shift from a source fraction alignment into a
/// destination FixedSpec with round-to-nearest (ties away from zero) and
/// saturation, counting saturation events.
struct Requant {
  int shift = 0;  // >0: drop bits, <0: widen
  std::int64_t lo = 0;
  std::int64_t hi = 0;

  Requant() = default;
  Requant(int from_frac_bits, const FixedSpec& to) {
    shift = from_frac_bits - (to.width - to.int_bits);
    hi = (std::int64_t{1} << (to.width - 1)) - 1;
    lo = -(std::int64_t{1} << (to.width - 1));
  }

  std::int64_t apply(std::int64_t v, std::size_t& saturations) const noexcept {
    if (shift > 0) {
      const std::int64_t half = std::int64_t{1} << (shift - 1);
      v = v >= 0 ? (v + half) >> shift : -((-v + half) >> shift);
    } else if (shift < 0) {
      v <<= -shift;
    }
    if (v < lo) {
      ++saturations;
      return lo;
    }
    if (v > hi) {
      ++saturations;
      return hi;
    }
    return v;
  }
};

int frac_bits(const FixedSpec& spec) noexcept {
  return spec.width - spec.int_bits;
}

/// The MAC accumulator of a layer: a fixed-point register with the layer's
/// activation integer range plus `guard` extra fraction bits, wrapping on
/// overflow exactly like an AC_WRAP ac_fixed accumulator. Because wrap is
/// modular arithmetic, accumulating exactly in int64 and wrapping once at
/// the end is bit-identical to wrapping after every addition.
struct Accum {
  int prod_shift = 0;   ///< product frac -> accumulator frac (>= 0)
  int bias_shift = 0;   ///< stored bias frac -> accumulator frac
  int ring_bits = 24;   ///< accumulator register width
  std::int64_t ring_lo = 0;
  std::int64_t ring_hi = 0;
  std::uint64_t mask = 0;
  Requant out;          ///< accumulator frac -> activation spec

  Accum(const FixedSpec& act, int product_frac, int stored_bias_frac,
        int guard_bits) {
    const int act_frac = act.width - act.int_bits;
    const int acc_frac = std::min(act_frac + guard_bits, product_frac);
    prod_shift = product_frac - acc_frac;
    bias_shift = stored_bias_frac - acc_frac;
    ring_bits = act.int_bits + acc_frac;
    // Degenerate all-fraction formats still need a 1-bit ring.
    if (ring_bits < 1) ring_bits = 1;
    ring_hi = (std::int64_t{1} << (ring_bits - 1)) - 1;
    ring_lo = -(std::int64_t{1} << (ring_bits - 1));
    mask = ring_bits >= 64 ? ~std::uint64_t{0}
                           : (std::uint64_t{1} << ring_bits) - 1;
    out = Requant(acc_frac, act);
  }

  std::int64_t term(std::int64_t product) const noexcept {
    // AC_TRN: arithmetic right shift == floor division.
    return prod_shift >= 0 ? product >> prod_shift : product << -prod_shift;
  }

  std::int64_t bias(std::int64_t stored) const noexcept {
    return bias_shift >= 0 ? stored >> bias_shift : stored << -bias_shift;
  }

  std::int64_t finalize(std::int64_t exact, std::size_t& overflows,
                        std::size_t& saturations) const noexcept {
    std::int64_t wrapped = exact;
    if (exact < ring_lo || exact > ring_hi) {
      ++overflows;
      auto u = static_cast<std::uint64_t>(exact) & mask;
      if (u & (std::uint64_t{1} << (ring_bits - 1))) u |= ~mask;
      wrapped = static_cast<std::int64_t>(u);
    }
    return out.apply(wrapped, saturations);
  }
};

}  // namespace

QuantizedModel::QuantizedModel(FirmwareModel firmware)
    : fw_(std::move(firmware)) {
  io_.reserve(fw_.layers.size());
  sigmoid_tables_.resize(fw_.layers.size());
  for (std::size_t i = 0; i < fw_.layers.size(); ++i) {
    const auto& l = fw_.layers[i];
    io_.push_back({l.positions, l.out_channels});
    if (l.kind == LayerKind::kSigmoid) {
      auto& table = sigmoid_tables_[i];
      table.resize(kSigmoidTableSize);
      const auto out_fmt = l.quant.activation.format();
      for (std::size_t b = 0; b < kSigmoidTableSize; ++b) {
        const double x = -kSigmoidRange +
                         (static_cast<double>(b) + 0.5) * 2.0 * kSigmoidRange /
                             static_cast<double>(kSigmoidTableSize);
        table[b] = out_fmt.quantize(1.0 / (1.0 + std::exp(-x)));
      }
    }
  }
}

std::vector<std::int64_t> QuantizedModel::quantize_input(
    const Tensor& input) const {
  if (input.numel() != fw_.input_values) {
    throw std::invalid_argument("QuantizedModel: input size mismatch");
  }
  const auto fmt = fw_.input_spec.format(fixed::QuantMode::kRound);
  std::vector<std::int64_t> raw;
  raw.reserve(input.numel());
  for (std::size_t i = 0; i < input.numel(); ++i) {
    raw.push_back(fmt.quantize(input[i]));
  }
  return raw;
}

Tensor QuantizedModel::dequantize_output(
    const std::vector<std::int64_t>& raw) const {
  const auto& out = fw_.layers.back();
  if (raw.size() != fw_.output_values) {
    throw std::invalid_argument("QuantizedModel: output size mismatch");
  }
  const auto fmt = fw_.output_spec.format();
  Tensor t({out.positions, out.out_channels});
  for (std::size_t i = 0; i < raw.size(); ++i) {
    t[i] = static_cast<float>(fmt.to_double(raw[i]));
  }
  return t;
}

Tensor QuantizedModel::forward(const Tensor& input, ForwardStats* stats) const {
  return dequantize_output(forward_raw(quantize_input(input), stats));
}

void QuantizedModel::run_layer(
    std::size_t idx, const std::vector<std::vector<std::int64_t>>& acts,
    std::vector<std::int64_t>& out, ForwardStats* stats) const {
  const auto& l = fw_.layers[idx];
  const auto& in0 = acts[l.inputs[0]];
  const auto& src0 = fw_.layers[l.inputs[0]];
  const int in_frac = frac_bits(src0.quant.activation);
  std::size_t sat = 0;
  std::size_t ovf = 0;
  out.assign(l.positions * l.out_channels, 0);

  switch (l.kind) {
    case LayerKind::kInput:
      throw std::logic_error("run_layer on input node");

    case LayerKind::kDense: {
      const Accum ac(l.quant.activation, frac_bits(l.quant.weight) + in_frac,
                     l.bias_frac_bits, fw_.config.quant.accum_guard_bits);
      const std::size_t in_ch = l.in_channels;
      const std::size_t out_ch = l.out_channels;
      for (std::size_t p = 0; p < l.positions; ++p) {
        const std::int64_t* xp = in0.data() + p * in_ch;
        std::int64_t* yp = out.data() + p * out_ch;
        for (std::size_t o = 0; o < out_ch; ++o) {
          const std::int64_t* wo = l.weights_raw.data() + o * in_ch;
          std::int64_t acc = ac.bias(l.bias_raw[o]);
          for (std::size_t i = 0; i < in_ch; ++i) acc += ac.term(wo[i] * xp[i]);
          yp[o] = ac.finalize(acc, ovf, sat);
        }
      }
      break;
    }

    case LayerKind::kConv1D: {
      const Accum ac(l.quant.activation, frac_bits(l.quant.weight) + in_frac,
                     l.bias_frac_bits, fw_.config.quant.accum_guard_bits);
      const std::size_t in_ch = l.in_channels;
      const std::size_t out_ch = l.out_channels;
      const std::size_t k = l.kernel;
      const auto pad = static_cast<std::ptrdiff_t>(k / 2);
      const auto positions = static_cast<std::ptrdiff_t>(l.positions);
      for (std::size_t p = 0; p < l.positions; ++p) {
        std::int64_t* yp = out.data() + p * out_ch;
        for (std::size_t o = 0; o < out_ch; ++o) {
          std::int64_t acc = ac.bias(l.bias_raw[o]);
          for (std::size_t dk = 0; dk < k; ++dk) {
            const std::ptrdiff_t q = static_cast<std::ptrdiff_t>(p + dk) - pad;
            if (q < 0 || q >= positions) continue;
            const std::int64_t* xq =
                in0.data() + static_cast<std::size_t>(q) * in_ch;
            const std::int64_t* wk =
                l.weights_raw.data() + (o * k + dk) * in_ch;
            for (std::size_t i = 0; i < in_ch; ++i) {
              acc += ac.term(wk[i] * xq[i]);
            }
          }
          yp[o] = ac.finalize(acc, ovf, sat);
        }
      }
      break;
    }

    case LayerKind::kBatchNorm: {
      const Accum ac(l.quant.activation, frac_bits(l.quant.weight) + in_frac,
                     l.bias_frac_bits, fw_.config.quant.accum_guard_bits);
      for (std::size_t p = 0; p < l.positions; ++p) {
        for (std::size_t c = 0; c < l.out_channels; ++c) {
          const std::int64_t acc =
              ac.term(l.weights_raw[c] * in0[p * l.out_channels + c]) +
              ac.bias(l.bias_raw[c]);
          out[p * l.out_channels + c] = ac.finalize(acc, ovf, sat);
        }
      }
      break;
    }

    case LayerKind::kMaxPool: {
      const Requant rq(in_frac, l.quant.activation);
      const std::size_t ch = l.out_channels;
      for (std::size_t p = 0; p < l.positions; ++p) {
        for (std::size_t c = 0; c < ch; ++c) {
          std::int64_t m = in0[(p * l.factor) * ch + c];
          for (std::size_t d = 1; d < l.factor; ++d) {
            m = std::max(m, in0[(p * l.factor + d) * ch + c]);
          }
          out[p * ch + c] = rq.apply(m, sat);
        }
      }
      break;
    }

    case LayerKind::kUpSample: {
      const Requant rq(in_frac, l.quant.activation);
      const std::size_t ch = l.out_channels;
      const std::size_t in_pos = l.positions / l.factor;
      for (std::size_t p = 0; p < in_pos; ++p) {
        for (std::size_t d = 0; d < l.factor; ++d) {
          for (std::size_t c = 0; c < ch; ++c) {
            out[(p * l.factor + d) * ch + c] = rq.apply(in0[p * ch + c], sat);
          }
        }
      }
      break;
    }

    case LayerKind::kConcat: {
      const auto& in1 = acts[l.inputs[1]];
      const auto& src1 = fw_.layers[l.inputs[1]];
      const Requant rq0(in_frac, l.quant.activation);
      const Requant rq1(frac_bits(src1.quant.activation), l.quant.activation);
      const std::size_t c0 = src0.out_channels;
      const std::size_t c1 = src1.out_channels;
      for (std::size_t p = 0; p < l.positions; ++p) {
        for (std::size_t c = 0; c < c0; ++c) {
          out[p * (c0 + c1) + c] = rq0.apply(in0[p * c0 + c], sat);
        }
        for (std::size_t c = 0; c < c1; ++c) {
          out[p * (c0 + c1) + c0 + c] = rq1.apply(in1[p * c1 + c], sat);
        }
      }
      break;
    }

    case LayerKind::kRelu: {
      const Requant rq(in_frac, l.quant.activation);
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = rq.apply(std::max<std::int64_t>(0, in0[i]), sat);
      }
      break;
    }

    case LayerKind::kSigmoid: {
      const auto& table = sigmoid_tables_[idx];
      const double scale = std::ldexp(1.0, -in_frac);
      const double buckets_per_unit =
          static_cast<double>(kSigmoidTableSize) / (2.0 * kSigmoidRange);
      for (std::size_t i = 0; i < out.size(); ++i) {
        const double x = static_cast<double>(in0[i]) * scale;
        auto b = static_cast<std::ptrdiff_t>(
            std::floor((x + kSigmoidRange) * buckets_per_unit));
        b = std::clamp<std::ptrdiff_t>(
            b, 0, static_cast<std::ptrdiff_t>(kSigmoidTableSize) - 1);
        out[i] = table[static_cast<std::size_t>(b)];
      }
      break;
    }

    case LayerKind::kFlatten: {
      const Requant rq(in_frac, l.quant.activation);
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = rq.apply(in0[i], sat);
      }
      break;
    }
  }

  if (stats) {
    stats->saturations[idx] += sat;
    stats->overflows[idx] += ovf;
  }
}

std::vector<std::int64_t> QuantizedModel::forward_raw(
    const std::vector<std::int64_t>& input_raw, ForwardStats* stats) const {
  if (input_raw.size() != fw_.input_values) {
    throw std::invalid_argument("QuantizedModel: raw input size mismatch");
  }
  if (stats) {
    if (stats->saturations.size() != fw_.layers.size()) {
      stats->saturations.assign(fw_.layers.size(), 0);
    }
    if (stats->overflows.size() != fw_.layers.size()) {
      stats->overflows.assign(fw_.layers.size(), 0);
    }
  }
  std::vector<std::vector<std::int64_t>> acts(fw_.layers.size());
  acts[0] = input_raw;
  for (std::size_t i = 1; i < fw_.layers.size(); ++i) {
    run_layer(i, acts, acts[i], stats);
  }
  return acts.back();
}

}  // namespace reads::hls
