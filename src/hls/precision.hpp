// Precision specifications for the ML/HLS co-design flow.
//
// The paper's central optimization is *layer-based* post-training
// quantization: every layer keeps the same total width (16 bits) but gets an
// integer-bit allocation sized to the maximum absolute value observed in
// that layer during profiling — "ac_fixed<16, x>" with x per layer.
#pragma once

#include <map>
#include <string>

#include "fixed/format.hpp"

namespace reads::hls {

/// Width/integer-bit pair, the "<W, I>" of an ac_fixed.
struct FixedSpec {
  int width = 16;
  int int_bits = 7;

  fixed::FixedFormat format(
      fixed::QuantMode quant = fixed::QuantMode::kRound,
      fixed::OverflowMode overflow = fixed::OverflowMode::kSaturate) const {
    return fixed::FixedFormat(width, int_bits, /*is_signed=*/true, quant,
                              overflow);
  }

  std::string to_string() const {
    return "ac_fixed<" + std::to_string(width) + ", " +
           std::to_string(int_bits) + ">";
  }

  friend bool operator==(const FixedSpec&, const FixedSpec&) = default;
};

/// Precision assignment for one layer.
struct LayerQuant {
  FixedSpec weight;      ///< weights and folded BN scale
  FixedSpec bias;        ///< biases and folded BN shift
  FixedSpec activation;  ///< the layer's output (result) type

  friend bool operator==(const LayerQuant&, const LayerQuant&) = default;
};

enum class PrecisionStrategy {
  kUniform,     ///< one spec everywhere (Table II rows 1-2)
  kLayerBased,  ///< per-layer integer bits from profiling (Table II row 3)
};

/// Complete quantization plan for a model.
struct QuantConfig {
  PrecisionStrategy strategy = PrecisionStrategy::kLayerBased;
  FixedSpec default_spec{16, 7};
  /// Per-layer overrides keyed by node name; consulted before default_spec.
  std::map<std::string, LayerQuant> per_layer;
  /// Extra fraction bits carried by MAC accumulators beyond the layer's
  /// activation type. The accumulator's *integer* range stays that of the
  /// activation type and wraps on overflow (the HLS AC_WRAP default) — the
  /// paper's "inner layer overflows" come from exactly this register.
  int accum_guard_bits = 8;

  LayerQuant layer(const std::string& name) const {
    if (auto it = per_layer.find(name); it != per_layer.end()) {
      return it->second;
    }
    return LayerQuant{default_spec, default_spec, default_spec};
  }

  static QuantConfig uniform(FixedSpec spec) {
    QuantConfig cfg;
    cfg.strategy = PrecisionStrategy::kUniform;
    cfg.default_spec = spec;
    return cfg;
  }

  /// Byte-identical plans compare equal — the determinism property the
  /// autotuner's seed-point round-trip and the layer_based_config
  /// determinism test rely on.
  friend bool operator==(const QuantConfig&, const QuantConfig&) = default;
};

/// Integer bits (including sign) needed to represent |v| without overflow:
/// the paper's rule for layer-based precision assignment.
int int_bits_for(double max_abs) noexcept;

}  // namespace reads::hls
