#include "hls/profiler.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace reads::hls {

int Profile::int_bits_for_coverage(const std::string& node,
                                   double coverage) const {
  const auto it = act_int_bits_histogram.find(node);
  if (it == act_int_bits_histogram.end()) {
    throw std::invalid_argument("Profile: no histogram for node '" + node +
                                "'");
  }
  const auto& hist = it->second;
  std::uint64_t total = 0;
  for (auto c : hist) total += c;
  if (total == 0) return 1;
  const auto needed = static_cast<std::uint64_t>(
      std::ceil(coverage * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (std::size_t b = 1; b < hist.size(); ++b) {
    seen += hist[b];
    if (seen >= needed) return static_cast<int>(b);
  }
  return static_cast<int>(hist.size() - 1);
}

Profile profile_model(const nn::Model& model,
                      const std::vector<tensor::Tensor>& calibration_inputs) {
  if (calibration_inputs.empty()) {
    throw std::invalid_argument("profile_model: no calibration inputs");
  }
  Profile prof;
  prof.calibration_frames = calibration_inputs.size();
  for (const auto& node : model.nodes()) {
    prof.max_activation[node.name] = 0.0;
    prof.act_int_bits_histogram[node.name].fill(0);
    if (node.layer) {
      const auto params = node.layer->params();
      if (!params.empty()) {
        prof.max_weight[node.name] = params[0]->max_abs();
        prof.max_bias[node.name] =
            params.size() > 1 ? params[1]->max_abs() : 0.0;
      }
    }
  }
  // Shard the calibration frames across the pool; each worker accumulates
  // into node-indexed locals (reusing one Activations) and the max/histogram
  // merges commute, so the result equals the sequential sweep.
  const std::size_t n_nodes = model.nodes().size();
  const std::size_t n_frames = calibration_inputs.size();
  const std::size_t shards =
      std::min(n_frames, std::max<std::size_t>(
                             1, util::ThreadPool::global().worker_count()));
  std::mutex mutex;
  util::parallel_for(std::size_t{0}, shards, [&](std::size_t s) {
    std::vector<double> local_max(n_nodes, 0.0);
    std::vector<std::array<std::uint64_t, 25>> local_hist(n_nodes);
    for (auto& h : local_hist) h.fill(0);
    nn::Activations acts;
    const std::size_t lo = s * n_frames / shards;
    const std::size_t hi = (s + 1) * n_frames / shards;
    for (std::size_t f = lo; f < hi; ++f) {
      model.forward_all_into(calibration_inputs[f], acts);
      for (std::size_t i = 0; i < n_nodes; ++i) {
        auto& hist = local_hist[i];
        for (const float v : acts.values[i].flat()) {
          const double a = std::fabs(v);
          local_max[i] = std::max(local_max[i], a);
          const auto bits = static_cast<std::size_t>(std::clamp(
              int_bits_for(a), 1, static_cast<int>(hist.size()) - 1));
          ++hist[bits];
        }
      }
    }
    std::lock_guard lock(mutex);
    for (std::size_t i = 0; i < n_nodes; ++i) {
      const auto& name = model.nodes()[i].name;
      auto& slot = prof.max_activation[name];
      slot = std::max(slot, local_max[i]);
      auto& hist = prof.act_int_bits_histogram[name];
      for (std::size_t b = 0; b < hist.size(); ++b) hist[b] += local_hist[i][b];
    }
  });
  return prof;
}

QuantConfig layer_based_config(const nn::Model& model, const Profile& profile,
                               int total_bits, int extra_int_bits,
                               double coverage) {
  if (coverage <= 0.0 || coverage > 1.0) {
    throw std::invalid_argument("layer_based_config: coverage out of (0, 1]");
  }
  QuantConfig cfg;
  cfg.strategy = PrecisionStrategy::kLayerBased;
  cfg.default_spec = FixedSpec{total_bits, std::min(total_bits, 7)};
  for (const auto& node : model.nodes()) {
    LayerQuant lq;
    const auto clamp_bits = [total_bits](int bits) {
      return std::clamp(bits, 1, total_bits);
    };
    int act_bits = 0;
    if (coverage >= 1.0) {
      const auto act_it = profile.max_activation.find(node.name);
      const double max_act =
          act_it != profile.max_activation.end() ? act_it->second : 1.0;
      act_bits = int_bits_for(max_act);
    } else {
      act_bits = profile.int_bits_for_coverage(node.name, coverage);
    }
    lq.activation = FixedSpec{total_bits, clamp_bits(act_bits + extra_int_bits)};
    const auto w_it = profile.max_weight.find(node.name);
    if (w_it != profile.max_weight.end()) {
      lq.weight = FixedSpec{total_bits, clamp_bits(int_bits_for(w_it->second))};
      const auto b_it = profile.max_bias.find(node.name);
      const double max_b = b_it != profile.max_bias.end() ? b_it->second : 0.0;
      lq.bias = FixedSpec{total_bits, clamp_bits(int_bits_for(max_b))};
    } else {
      lq.weight = lq.activation;
      lq.bias = lq.activation;
    }
    cfg.per_layer[node.name] = lq;
  }
  return cfg;
}

}  // namespace reads::hls
