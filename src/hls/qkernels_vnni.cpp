// VNNI dot-product variant of the narrow-lane kernel. Lives in its own
// translation unit because it is compiled with -mavx512vnni (see
// src/hls/CMakeLists.txt): keeping the flag off the other AVX-512 TU stops
// the compiler from auto-emitting VNNI instructions into code paths that
// are reachable on non-VNNI machines. Only ever called after a runtime
// __builtin_cpu_supports("avx512vnni") check in qkernels.cpp.
//
// vpdpwssd fuses two int16 products into one int32 accumulate with no
// intermediate widening, so it is only dispatched for layers the range
// prover certified with shift == 0 and an absolute-sum bound inside int32
// (covering the instruction's internal pair-sum as well as the running
// accumulator). Under that certificate every value involved is exact, so
// the result is bit-identical to the scalar pair loop.
#if defined(READS_QKERNELS_VNNI)

#include <immintrin.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace reads::hls::kernels::detail {

namespace {

template <int NB>
void dp_block_pass(const std::int16_t* x, const std::int16_t* wtr,
                   const std::int32_t* bias_acc, std::int32_t* acc,
                   std::ptrdiff_t pos, std::size_t in_pairs,
                   std::size_t in_stride, std::size_t out_pad, std::size_t ob,
                   std::ptrdiff_t kk) {
  const auto pad = kk / 2;
  for (std::ptrdiff_t p = 0; p < pos; ++p) {
    __m512i accv[NB];
    for (int b = 0; b < NB; ++b) {
      accv[b] = _mm512_loadu_si512(bias_acc + ob + 16 * static_cast<std::size_t>(b));
    }
    const std::ptrdiff_t dk_lo = std::max<std::ptrdiff_t>(0, pad - p);
    const std::ptrdiff_t dk_hi = std::min<std::ptrdiff_t>(kk, pos + pad - p);
    for (std::ptrdiff_t dk = dk_lo; dk < dk_hi; ++dk) {
      const std::int16_t* xq =
          x + static_cast<std::size_t>(p + dk - pad) * in_stride;
      const std::int16_t* wdk =
          wtr + static_cast<std::size_t>(dk) * in_pairs * out_pad * 2;
      for (std::size_t ip = 0; ip < in_pairs; ++ip) {
        // Broadcast the adjacent activation pair as one epi32; the lane
        // order of the two int16 halves matches vpdpwssd's pairing.
        std::int32_t xpair;
        std::memcpy(&xpair, xq + 2 * ip, sizeof(xpair));
        if (xpair == 0) continue;
        const __m512i xvec = _mm512_set1_epi32(xpair);
        const std::int16_t* wrow = wdk + ip * out_pad * 2 + ob * 2;
        for (int b = 0; b < NB; ++b) {
          const __m512i w = _mm512_loadu_si512(wrow + 32 * b);
          accv[b] = _mm512_dpwssd_epi32(accv[b], w, xvec);
        }
      }
    }
    std::int32_t* accp = acc + static_cast<std::size_t>(p) * out_pad + ob;
    for (int b = 0; b < NB; ++b) {
      _mm512_storeu_si512(accp + 16 * static_cast<std::size_t>(b), accv[b]);
    }
  }
}

}  // namespace

void conv1d_acc_i16_dp_vnni(const std::int16_t* x, const std::int16_t* wtr,
                            const std::int32_t* bias_acc, std::int32_t* acc,
                            std::size_t positions, std::size_t in_pairs,
                            std::size_t in_stride, std::size_t /*out_ch*/,
                            std::size_t out_pad, std::size_t k) {
  const auto pos = static_cast<std::ptrdiff_t>(positions);
  const auto kk = static_cast<std::ptrdiff_t>(k);
  std::size_t ob = 0;
  for (; ob + 64 <= out_pad; ob += 64) {
    dp_block_pass<4>(x, wtr, bias_acc, acc, pos, in_pairs, in_stride, out_pad,
                     ob, kk);
  }
  switch ((out_pad - ob) / 16) {
    case 3:
      dp_block_pass<3>(x, wtr, bias_acc, acc, pos, in_pairs, in_stride,
                       out_pad, ob, kk);
      break;
    case 2:
      dp_block_pass<2>(x, wtr, bias_acc, acc, pos, in_pairs, in_stride,
                       out_pad, ob, kk);
      break;
    case 1:
      dp_block_pass<1>(x, wtr, bias_acc, acc, pos, in_pairs, in_stride,
                       out_pad, ob, kk);
      break;
    default:
      break;
  }
}

}  // namespace reads::hls::kernels::detail

#endif  // READS_QKERNELS_VNNI
