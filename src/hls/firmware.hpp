// The hls4ml-equivalent converter: lowers a trained nn::Model into a
// FirmwareModel — the bit-exact, reuse-annotated description of the IP core
// that the quantized executor, the resource model, and the latency model all
// consume. BatchNorm layers are folded to per-channel scale/shift, weights
// are pre-quantized to raw fixed-point words, and every layer carries its
// FixedSpec precisions and reuse factor.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hls/precision.hpp"
#include "nn/model.hpp"

namespace reads::hls {

enum class LayerKind {
  kInput,
  kDense,       ///< position-wise dense (channel transform)
  kConv1D,
  kMaxPool,
  kUpSample,
  kConcat,
  kBatchNorm,   ///< folded to scale/shift
  kRelu,
  kSigmoid,     ///< fixed-point LUT, hls4ml style
  kFlatten,
};

std::string_view to_string(LayerKind kind) noexcept;

/// Reuse-factor policy. In hls4ml the reuse factor R is the number of times
/// one physical multiplier is used per output computation; higher R means
/// fewer multipliers (less area) and proportionally more cycles.
struct ReusePolicy {
  std::size_t default_reuse = 32;
  /// Per-layer overrides by node name. The requested value is clamped to
  /// the layer's per-position multiply count (a multiplier cannot be reused
  /// more times than there are multiplies to do); Table III's "Dense/Sigmoid
  /// reuse factor 260" corresponds to the head running fully serialized.
  std::map<std::string, std::size_t> overrides;

  std::size_t requested(const std::string& name) const {
    if (auto it = overrides.find(name); it != overrides.end()) {
      return it->second;
    }
    return default_reuse;
  }

  /// The paper's deployed U-Net plan (Table III): default reuse 32, with the
  /// fat inner layers and the Dense/Sigmoid head serialized at 260 so the
  /// design fits the Arria 10 ("we need to increase the reuse factor of
  /// dense layers").
  static ReusePolicy deployed_unet();
  /// The MLP exploration model: uniform reuse 64.
  static ReusePolicy deployed_mlp();
};

struct HlsConfig {
  QuantConfig quant;
  ReusePolicy reuse;
  double clock_mhz = 100.0;  ///< paper's IP clock
};

struct FirmwareLayer {
  std::string name;
  LayerKind kind = LayerKind::kInput;
  std::vector<std::size_t> inputs;  ///< indices into FirmwareModel::layers

  // Geometry (positions = output positions of this layer).
  std::size_t positions = 0;
  std::size_t in_channels = 0;
  std::size_t out_channels = 0;
  std::size_t kernel = 0;   ///< Conv1D only
  std::size_t factor = 0;   ///< pool/upsample only

  LayerQuant quant;
  std::size_t reuse = 1;          ///< effective (clamped) reuse factor
  std::size_t mults_per_output = 0;  ///< multiplies per output position
  std::size_t instantiated_mults = 0;

  // Pre-quantized parameters, raw two's-complement at the specs in `quant`.
  // Dense: weights (out, in); Conv1D: (out, k, in); BatchNorm: scale/shift
  // per channel (scale in weights_raw, shift in bias_raw).
  std::vector<std::int64_t> weights_raw;
  std::vector<std::int64_t> bias_raw;
  /// Bias raw values are stored at the accumulator alignment
  /// (weight.frac + input activation frac bits) so the executor can add
  /// them straight into the accumulator.
  int bias_frac_bits = 0;

  bool has_weights() const noexcept { return !weights_raw.empty(); }
  /// Total MACs to produce one frame through this layer.
  std::size_t total_macs() const noexcept {
    return positions * mults_per_output;
  }
};

struct FirmwareModel {
  std::vector<FirmwareLayer> layers;  ///< layers[0] is the input pseudo-layer
  HlsConfig config;
  std::size_t input_values = 0;   ///< frame length (monitors)
  std::size_t output_values = 0;  ///< output words per frame
  FixedSpec input_spec;
  FixedSpec output_spec;

  const FirmwareLayer& layer(const std::string& name) const;
  std::size_t weight_count() const noexcept;
};

/// Lower a float model to firmware under the given configuration.
/// `calibration_input_frac` — activation spec of the input node comes from
/// config.quant.layer(input node name).
FirmwareModel compile(const nn::Model& model, const HlsConfig& config);

}  // namespace reads::hls
