// Narrow-lane range prover for the quantized kernel engine.
//
// The paper's layer-based precision work guarantees every activation word
// saturates into its layer's FixedSpec, and the weights are fixed at compile
// time — which means the accumulator magnitudes of each Dense/Conv1D layer
// are *provable* before any frame is served. This module turns that into a
// machine-checked per-layer lane decision (rule4ml's "keep the precision
// bookkeeping machine-checkable" applied in software): a layer whose proven
// accumulator envelope fits int32 runs the int16xint16->int32 narrow-lane
// kernels (16 SIMD lanes, quarter the weight traffic); anything unproven
// falls back to the exact int64 path. Bit-identity is never traded away —
// the proof is a precondition for using narrow arithmetic, not a tolerance.
//
// The proof has two parts:
//  1. Interval propagation of raw activation words through the firmware
//     graph. Every layer's write-out goes through a saturating Requant, so
//     its output interval is the requant image of its input interval,
//     intersected with the spec's saturation range; ReLU clamps at zero,
//     the sigmoid LUT is bounded by quantize(1.0), and a MAC layer whose
//     accumulator provably never wraps maps its envelope through the
//     (monotone) output requant. The PTQ profiler ranges enter through the
//     FixedSpecs themselves: layer_based_config sizes every spec from the
//     profiled maxima, and those specs are what the intervals come from.
//  2. A per-output accumulator envelope: with x in [x_lo, x_hi] (from step
//     1) and the actual trained weights, each term t = (w*x) >> s lies in a
//     computable interval, and every *partial* sum the kernels can form —
//     bias first, taps in any order — lies inside
//       [bias + sum min(0, t_lo),  bias + sum max(0, t_hi)].
//     If that envelope fits int32 (and weights/activations fit int16, and
//     0 <= s < 32), int32 accumulation of shifted int32 products is exact,
//     hence bit-identical to the reference int64 loop.
//
// The VNNI dot-product lane (vpdpwssd: two int16 products fused into one
// int32 accumulate) additionally requires s == 0 (the fused pair-sum cannot
// reproduce a per-term shift) and the stricter absolute-sum bound
// |bias| + sum max(|t_lo|, |t_hi|) < 2^31, because the instruction folds
// unshifted product pairs before they ever meet the running sum.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hls/firmware.hpp"

namespace reads::hls {

enum class Lane : std::uint8_t {
  kWide64,     ///< exact int64 path (reference-shaped kernels)
  kNarrow32,   ///< int16 x int16 -> int32, per-term shift in int32
  kNarrowDp,   ///< int16 pair dot-product (VNNI-style), shift == 0
};

std::string_view to_string(Lane lane) noexcept;

/// Proven raw-word interval of one layer's output.
struct RawInterval {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
};

/// Verdict for one firmware layer.
struct LaneDecision {
  Lane lane = Lane::kWide64;
  bool mac_layer = false;  ///< Dense/Conv1D (the kernel-eligible kinds)
  /// Why the layer is (or is not) on a narrow lane, human-readable.
  std::string reason;
  /// Proven bounds used by the decision (valid for mac_layer):
  std::int64_t env_lo = 0;     ///< min over any kernel partial sum
  std::int64_t env_hi = 0;     ///< max over any kernel partial sum
  std::int64_t abs_bound = 0;  ///< |bias| + sum of per-term |t| bounds
};

struct LaneReport {
  std::vector<LaneDecision> decisions;  ///< one per firmware layer
  std::vector<RawInterval> ranges;      ///< step-1 intervals, per layer
  std::size_t mac_layers = 0;
  std::size_t narrow_layers = 0;  ///< kNarrow32 + kNarrowDp among MAC layers
};

/// Run the prover over a compiled firmware model.
LaneReport prove_lanes(const FirmwareModel& fw);

}  // namespace reads::hls
