// Fixed-point re-quantization and MAC-accumulator arithmetic shared by the
// quantized executor (qmodel.cpp) and its blocked kernels (qkernels.cpp).
// These used to live in qmodel.cpp's anonymous namespace; they moved here
// unchanged when the kernels were split into their own translation unit so
// both paths stay bit-identical by construction.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "hls/precision.hpp"

namespace reads::hls::detail {

/// Precomputed re-quantizer: shift from a source fraction alignment into a
/// destination FixedSpec with round-to-nearest (ties away from zero) and
/// saturation, counting saturation events.
struct Requant {
  int shift = 0;  // >0: drop bits, <0: widen
  std::int64_t lo = 0;
  std::int64_t hi = 0;

  Requant() = default;
  Requant(int from_frac_bits, const FixedSpec& to) {
    shift = from_frac_bits - (to.width - to.int_bits);
    // Destination widths >= 64 mean "the whole int64 range": shifting
    // int64_t{1} by 63+ is UB, so clamp to the representable extremes.
    if (to.width >= 64) {
      hi = std::numeric_limits<std::int64_t>::max();
      lo = std::numeric_limits<std::int64_t>::min();
    } else {
      hi = (std::int64_t{1} << (to.width - 1)) - 1;
      lo = -(std::int64_t{1} << (to.width - 1));
    }
  }

  std::int64_t apply(std::int64_t v, std::size_t& saturations) const noexcept {
    if (shift >= 64) {
      // The rounding half is 2^(shift-1) > |v| for every int64 except
      // v = INT64_MIN at shift == 64 (the only |v| reaching the half):
      // everything else rounds to zero. Shift counts >= 64 would be UB
      // below, so the band is resolved by value analysis instead.
      v = (shift == 64 && v == std::numeric_limits<std::int64_t>::min()) ? -1
                                                                         : 0;
    } else if (shift > 0) {
      // Round to nearest, ties away from zero, on the unsigned magnitude:
      // `v + half` on int64 overflows for v near the type extremes (and
      // `-v` for INT64_MIN), but mag + half < 2^64 always, and the shifted
      // result fits back in int64 because shift >= 1 halves it at least
      // once. Matches the AVX-512 lanes (abs + unsigned shift) bit-exactly.
      const std::uint64_t half = std::uint64_t{1} << (shift - 1);
      const std::uint64_t mag =
          v >= 0 ? static_cast<std::uint64_t>(v)
                 : static_cast<std::uint64_t>(-(v + 1)) + 1;
      const std::uint64_t r = (mag + half) >> shift;
      v = v >= 0 ? static_cast<std::int64_t>(r)
                 : static_cast<std::int64_t>(0 - r);
    } else if (shift < 0) {
      // Widening: `v << k` overflows int64 for large |v| (signed-overflow
      // UB) before the clamp below could catch it. Saturate against the
      // pre-shift thresholds instead: v<<k > hi iff v > hi>>k (v<<k is a
      // multiple of 2^k), and v<<k < lo iff v < ceil(lo / 2^k), which is
      // floor(lo / 2^k) + 1 unless 2^k divides lo. Bit-identical to the
      // old shift-then-clamp on every input the old code handled without
      // overflowing.
      const int k = -shift;
      if (k >= 63) {
        // Any nonzero value overshoots the representable range.
        if (v > 0) {
          ++saturations;
          return hi;
        }
        if (v < 0) {
          ++saturations;
          return lo;
        }
        return 0;
      }
      const std::int64_t hi_thr = hi >> k;
      const std::int64_t lo_floor = lo >> k;
      const std::int64_t lo_thr =
          lo_floor * (std::int64_t{1} << k) == lo ? lo_floor : lo_floor + 1;
      if (v > hi_thr) {
        ++saturations;
        return hi;
      }
      if (v < lo_thr) {
        ++saturations;
        return lo;
      }
      v <<= k;
    }
    if (v < lo) {
      ++saturations;
      return lo;
    }
    if (v > hi) {
      ++saturations;
      return hi;
    }
    return v;
  }
};

/// The MAC accumulator of a layer: a fixed-point register with the layer's
/// activation integer range plus `guard` extra fraction bits, wrapping on
/// overflow exactly like an AC_WRAP ac_fixed accumulator. Because wrap is
/// modular arithmetic, accumulating exactly in int64 and wrapping once at
/// the end is bit-identical to wrapping after every addition — and because
/// int64 addition is exact at our magnitudes, the *order* in which terms
/// are accumulated is free: blocked kernels produce the same final sums,
/// hence the same overflow/saturation counts, as the reference loops.
struct Accum {
  int prod_shift = 0;   ///< product frac -> accumulator frac (>= 0)
  int bias_shift = 0;   ///< stored bias frac -> accumulator frac
  int ring_bits = 24;   ///< accumulator register width
  std::int64_t ring_lo = 0;
  std::int64_t ring_hi = 0;
  std::uint64_t mask = 0;
  Requant out;          ///< accumulator frac -> activation spec

  Accum(const FixedSpec& act, int product_frac, int stored_bias_frac,
        int guard_bits) {
    const int act_frac = act.width - act.int_bits;
    const int acc_frac = std::min(act_frac + guard_bits, product_frac);
    prod_shift = product_frac - acc_frac;
    bias_shift = stored_bias_frac - acc_frac;
    ring_bits = act.int_bits + acc_frac;
    // Degenerate all-fraction formats still need a 1-bit ring.
    if (ring_bits < 1) ring_bits = 1;
    // Rings of 64+ bits cover the whole accumulator: the shift below would
    // be UB (the mask line already clamps this case), and since the exact
    // int64 sum always lies inside such a ring, finalize never wraps.
    if (ring_bits >= 64) {
      ring_hi = std::numeric_limits<std::int64_t>::max();
      ring_lo = std::numeric_limits<std::int64_t>::min();
    } else {
      ring_hi = (std::int64_t{1} << (ring_bits - 1)) - 1;
      ring_lo = -(std::int64_t{1} << (ring_bits - 1));
    }
    mask = ring_bits >= 64 ? ~std::uint64_t{0}
                           : (std::uint64_t{1} << ring_bits) - 1;
    out = Requant(acc_frac, act);
  }

  std::int64_t term(std::int64_t product) const noexcept {
    // AC_TRN: arithmetic right shift == floor division.
    return prod_shift >= 0 ? product >> prod_shift : product << -prod_shift;
  }

  std::int64_t bias(std::int64_t stored) const noexcept {
    return bias_shift >= 0 ? stored >> bias_shift : stored << -bias_shift;
  }

  std::int64_t finalize(std::int64_t exact, std::size_t& overflows,
                        std::size_t& saturations) const noexcept {
    std::int64_t wrapped = exact;
    if (exact < ring_lo || exact > ring_hi) {
      ++overflows;
      auto u = static_cast<std::uint64_t>(exact) & mask;
      if (u & (std::uint64_t{1} << (ring_bits - 1))) u |= ~mask;
      wrapped = static_cast<std::int64_t>(u);
    }
    return out.apply(wrapped, saturations);
  }
};

}  // namespace reads::hls::detail
