// Analytical FPGA resource model, calibrated against the paper's Arria 10
// SX 660 reports (Tables II and III).
//
// Cost rules (documented in DESIGN.md §5):
//  * A layer with reuse factor R instantiates ceil(mults_per_output / R)
//    physical multipliers; their weights are compile-time ROM constants.
//  * Multipliers whose operand widths both fit the native 18x19 DSP path
//    (<= 16 significant bits after sign/guard allowances) are eligible for
//    DSP packing; Intel HLS maps a calibrated fraction of the eligible
//    multipliers into DSP dot-product pairs (two per block) and implements
//    the rest as LUT shift-add structures. Wider products decompose fully
//    into soft logic at a steeper per-bit cost — this is the cliff that
//    pushes uniform ac_fixed<18,10> past 100% ALUT utilization.
//  * Each instantiated multiplier carries an accumulator slice of width
//    w_a + w_w + ceil(log2(fan-in)).
//  * Layer-based precision inserts alignment shifters between layers whose
//    activation formats differ.
//  * Weight ROM partitions dominate M20K usage (one partition per
//    instantiated multiplier), matching the paper's 1,818 RAM blocks at a
//    modest bit fill.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hls/firmware.hpp"

namespace reads::hls {

struct DeviceSpec {
  std::string name;
  std::size_t alms;
  std::size_t aluts;      ///< 2 per ALM
  std::size_t dsp_blocks;
  std::size_t m20k_blocks;
  std::size_t bram_bits;  ///< m20k_blocks * 20480
  std::size_t pins;
  std::size_t plls;

  /// The Achilles SoM's Arria 10 SX 660 (the paper's board).
  static DeviceSpec arria10_sx660();
  /// A smaller Cyclone V used in the paper's staged verification flow.
  static DeviceSpec cyclone5();
};

struct LayerResources {
  std::string name;
  std::size_t aluts = 0;
  std::size_t dsps = 0;
  std::size_t ram_blocks = 0;
  std::size_t bram_bits = 0;
  std::size_t registers = 0;
  std::size_t mults_soft = 0;
  std::size_t mults_dsp = 0;
};

struct ResourceReport {
  std::vector<LayerResources> layers;
  std::size_t kernel_aluts = 0;     ///< NN IP only
  std::size_t platform_aluts = 0;   ///< bridges, control IP, buffers, debug
  std::size_t total_aluts = 0;
  std::size_t total_alms = 0;
  std::size_t total_registers = 0;
  std::size_t total_dsps = 0;
  std::size_t total_ram_blocks = 0;
  std::size_t total_bram_bits = 0;
  DeviceSpec device;

  double alut_utilization() const {
    return static_cast<double>(total_aluts) / static_cast<double>(device.aluts);
  }
  double alm_utilization() const {
    return static_cast<double>(total_alms) / static_cast<double>(device.alms);
  }
  double dsp_utilization() const {
    return static_cast<double>(total_dsps) /
           static_cast<double>(device.dsp_blocks);
  }
  double ram_utilization() const {
    return static_cast<double>(total_ram_blocks) /
           static_cast<double>(device.m20k_blocks);
  }
  double bram_bit_utilization() const {
    return static_cast<double>(total_bram_bits) /
           static_cast<double>(device.bram_bits);
  }
  bool fits() const { return alut_utilization() <= 1.0 && dsp_utilization() <= 1.0; }
};

struct ResourceModelParams {
  /// ALUT cost per product bit (wa*wb) for DSP-eligible-width soft mults
  /// (weights are ROM constants, so these are CSD shift-add multipliers).
  double lut_mult_coeff = 0.38;
  /// ALUT cost per product bit for wide (DSP-ineligible) mults, which
  /// decompose fully into partial-product rows in soft logic.
  double lut_mult_wide_coeff = 1.20;
  /// Operand width limit for DSP eligibility (native 18x19 minus guard).
  int dsp_width_limit = 16;
  /// Fraction of eligible multipliers Intel HLS maps onto DSPs.
  double dsp_map_fraction = 0.41;
  /// Multipliers packed per DSP block (two-per-block dot-product mode).
  std::size_t mults_per_dsp = 2;
  /// ALUTs per accumulator bit.
  double acc_coeff = 0.75;
  /// Fixed per-layer stream/control ALUTs.
  std::size_t layer_overhead_aluts = 900;
  /// ALUTs per bit of inter-layer alignment shifter (layer-based precision).
  double align_coeff = 1.5;
  /// Registers per ALUT (pipeline depth proxy; paper: ~406k/161k).
  double regs_per_alut = 2.5;
  /// Platform (non-kernel) ALUTs: bridges, control IP, counters, SignalTap.
  std::size_t platform_aluts = 14'000;
  /// Platform RAM blocks (I/O OCRAMs, trace buffers).
  std::size_t platform_ram_blocks = 256;
  /// Effective ALUTs per ALM achieved by the fitter. Below 1.0 because
  /// carry chains, control-set constraints, and routing replication leave
  /// many ALMs partially used; calibrated to the paper's Quartus report
  /// (223,674 ALMs for ~161k estimated ALUTs).
  double aluts_per_alm = 0.72;
  /// Average bit fill per occupied M20K (paper: 25.28 Mb / 1818 blocks).
  double m20k_fill_bits = 13'900.0;
};

class ResourceModel {
 public:
  explicit ResourceModel(DeviceSpec device = DeviceSpec::arria10_sx660(),
                         ResourceModelParams params = {});

  ResourceReport estimate(const FirmwareModel& fw) const;

  const ResourceModelParams& params() const noexcept { return params_; }
  const DeviceSpec& device() const noexcept { return device_; }

 private:
  DeviceSpec device_;
  ResourceModelParams params_;
};

}  // namespace reads::hls
