#include "hls/qkernels.hpp"

#include <algorithm>

namespace reads::hls::kernels {

namespace detail {

// Scalar fallback: 4-wide output blocking over the transposed weight row,
// one activation load shared across the block, zero activations skipped
// ((0 * w) >> shift contributes exactly 0, and after ReLU layers a large
// fraction of activations are zero).
void conv1d_acc_scalar(const std::int64_t* x, const std::int64_t* wtr,
                       const std::int64_t* bias_acc, std::int64_t* acc,
                       std::size_t positions, std::size_t in_ch,
                       std::size_t out_ch, std::size_t k, int shift) {
  const auto pad = static_cast<std::ptrdiff_t>(k / 2);
  const auto pos = static_cast<std::ptrdiff_t>(positions);
  const auto kk = static_cast<std::ptrdiff_t>(k);
  for (std::ptrdiff_t p = 0; p < pos; ++p) {
    std::int64_t* accp = acc + static_cast<std::size_t>(p) * out_ch;
    std::copy(bias_acc, bias_acc + out_ch, accp);
    const std::ptrdiff_t dk_lo = std::max<std::ptrdiff_t>(0, pad - p);
    const std::ptrdiff_t dk_hi = std::min<std::ptrdiff_t>(kk, pos + pad - p);
    for (std::ptrdiff_t dk = dk_lo; dk < dk_hi; ++dk) {
      const std::int64_t* xq =
          x + static_cast<std::size_t>(p + dk - pad) * in_ch;
      const std::int64_t* wdk = wtr + static_cast<std::size_t>(dk) * in_ch * out_ch;
      for (std::size_t i = 0; i < in_ch; ++i) {
        const std::int64_t xv = xq[i];
        if (xv == 0) continue;
        const std::int64_t* wrow = wdk + i * out_ch;
        std::size_t o = 0;
        for (; o + 4 <= out_ch; o += 4) {
          accp[o + 0] += (wrow[o + 0] * xv) >> shift;
          accp[o + 1] += (wrow[o + 1] * xv) >> shift;
          accp[o + 2] += (wrow[o + 2] * xv) >> shift;
          accp[o + 3] += (wrow[o + 3] * xv) >> shift;
        }
        for (; o < out_ch; ++o) accp[o] += (wrow[o] * xv) >> shift;
      }
    }
  }
}

#if defined(READS_QKERNELS_AVX512)
void conv1d_acc_avx512(const std::int64_t* x, const std::int64_t* wtr,
                       const std::int64_t* bias_acc, std::int64_t* acc,
                       std::size_t positions, std::size_t in_ch,
                       std::size_t out_ch, std::size_t k, int shift);
#endif

using KernelFn = void (*)(const std::int64_t*, const std::int64_t*,
                          const std::int64_t*, std::int64_t*, std::size_t,
                          std::size_t, std::size_t, std::size_t, int);

struct Dispatch {
  KernelFn fn = conv1d_acc_scalar;
  const char* name = "scalar";
};

Dispatch resolve() {
#if defined(READS_QKERNELS_AVX512) && defined(__GNUC__) && defined(__x86_64__)
  if (__builtin_cpu_supports("avx512dq") && __builtin_cpu_supports("avx512vl")) {
    return {conv1d_acc_avx512, "avx512"};
  }
#endif
  return {};
}

const Dispatch& dispatch() {
  static const Dispatch d = resolve();
  return d;
}

}  // namespace detail

void conv1d_acc(const std::int64_t* x, const std::int64_t* wtr,
                const std::int64_t* bias_acc, std::int64_t* acc,
                std::size_t positions, std::size_t in_ch, std::size_t out_ch,
                std::size_t k, int shift) {
  detail::dispatch().fn(x, wtr, bias_acc, acc, positions, in_ch, out_ch, k,
                        shift);
}

const char* variant() noexcept { return detail::dispatch().name; }

}  // namespace reads::hls::kernels
