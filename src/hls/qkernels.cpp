#include "hls/qkernels.hpp"

#include <algorithm>

namespace reads::hls::kernels {

namespace detail {

// Scalar fallback: 4-wide output blocking over the transposed weight row,
// one activation load shared across the block, zero activations skipped
// ((0 * w) >> shift contributes exactly 0, and after ReLU layers a large
// fraction of activations are zero).
void conv1d_acc_scalar(const std::int64_t* x, const std::int64_t* wtr,
                       const std::int64_t* bias_acc, std::int64_t* acc,
                       std::size_t positions, std::size_t in_ch,
                       std::size_t out_ch, std::size_t k, int shift) {
  const auto pad = static_cast<std::ptrdiff_t>(k / 2);
  const auto pos = static_cast<std::ptrdiff_t>(positions);
  const auto kk = static_cast<std::ptrdiff_t>(k);
  for (std::ptrdiff_t p = 0; p < pos; ++p) {
    std::int64_t* accp = acc + static_cast<std::size_t>(p) * out_ch;
    std::copy(bias_acc, bias_acc + out_ch, accp);
    const std::ptrdiff_t dk_lo = std::max<std::ptrdiff_t>(0, pad - p);
    const std::ptrdiff_t dk_hi = std::min<std::ptrdiff_t>(kk, pos + pad - p);
    for (std::ptrdiff_t dk = dk_lo; dk < dk_hi; ++dk) {
      const std::int64_t* xq =
          x + static_cast<std::size_t>(p + dk - pad) * in_ch;
      const std::int64_t* wdk = wtr + static_cast<std::size_t>(dk) * in_ch * out_ch;
      for (std::size_t i = 0; i < in_ch; ++i) {
        const std::int64_t xv = xq[i];
        if (xv == 0) continue;
        const std::int64_t* wrow = wdk + i * out_ch;
        std::size_t o = 0;
        for (; o + 4 <= out_ch; o += 4) {
          accp[o + 0] += (wrow[o + 0] * xv) >> shift;
          accp[o + 1] += (wrow[o + 1] * xv) >> shift;
          accp[o + 2] += (wrow[o + 2] * xv) >> shift;
          accp[o + 3] += (wrow[o + 3] * xv) >> shift;
        }
        for (; o < out_ch; ++o) accp[o] += (wrow[o] * xv) >> shift;
      }
    }
  }
}

// Scalar narrow lane. Products are computed in int32 (the prover certified
// |w|, |x| <= 2^15 so w*x fits) and the accumulator is int32 on purpose:
// the prover's envelope says no partial sum can leave int32, and keeping
// the scalar path at the same width as the SIMD lanes means a prover bug
// shows up as a sanitizer report in the property tests instead of silently
// diverging between variants.
void conv1d_acc_i16_scalar(const std::int16_t* x, const std::int16_t* wtr,
                           const std::int32_t* bias_acc, std::int32_t* acc,
                           std::size_t positions, std::size_t in_ch,
                           std::size_t in_stride, std::size_t out_ch,
                           std::size_t out_pad, std::size_t k, int shift) {
  const auto pad = static_cast<std::ptrdiff_t>(k / 2);
  const auto pos = static_cast<std::ptrdiff_t>(positions);
  const auto kk = static_cast<std::ptrdiff_t>(k);
  for (std::ptrdiff_t p = 0; p < pos; ++p) {
    std::int32_t* accp = acc + static_cast<std::size_t>(p) * out_pad;
    std::copy(bias_acc, bias_acc + out_ch, accp);
    const std::ptrdiff_t dk_lo = std::max<std::ptrdiff_t>(0, pad - p);
    const std::ptrdiff_t dk_hi = std::min<std::ptrdiff_t>(kk, pos + pad - p);
    for (std::ptrdiff_t dk = dk_lo; dk < dk_hi; ++dk) {
      const std::int16_t* xq =
          x + static_cast<std::size_t>(p + dk - pad) * in_stride;
      const std::int16_t* wdk =
          wtr + static_cast<std::size_t>(dk) * in_ch * out_pad;
      for (std::size_t i = 0; i < in_ch; ++i) {
        const std::int32_t xv = xq[i];
        if (xv == 0) continue;
        const std::int16_t* wrow = wdk + i * out_pad;
        std::size_t o = 0;
        for (; o + 4 <= out_ch; o += 4) {
          accp[o + 0] += (wrow[o + 0] * xv) >> shift;
          accp[o + 1] += (wrow[o + 1] * xv) >> shift;
          accp[o + 2] += (wrow[o + 2] * xv) >> shift;
          accp[o + 3] += (wrow[o + 3] * xv) >> shift;
        }
        for (; o < out_ch; ++o) accp[o] += (wrow[o] * xv) >> shift;
      }
    }
  }
}

// Scalar dot-product lane: fused int16-pair accumulation with shift == 0,
// the same pair-sum order vpdpwssd uses.
void conv1d_acc_i16_dp_scalar(const std::int16_t* x, const std::int16_t* wtr,
                              const std::int32_t* bias_acc, std::int32_t* acc,
                              std::size_t positions, std::size_t in_pairs,
                              std::size_t in_stride, std::size_t out_ch,
                              std::size_t out_pad, std::size_t k) {
  const auto pad = static_cast<std::ptrdiff_t>(k / 2);
  const auto pos = static_cast<std::ptrdiff_t>(positions);
  const auto kk = static_cast<std::ptrdiff_t>(k);
  for (std::ptrdiff_t p = 0; p < pos; ++p) {
    std::int32_t* accp = acc + static_cast<std::size_t>(p) * out_pad;
    std::copy(bias_acc, bias_acc + out_ch, accp);
    const std::ptrdiff_t dk_lo = std::max<std::ptrdiff_t>(0, pad - p);
    const std::ptrdiff_t dk_hi = std::min<std::ptrdiff_t>(kk, pos + pad - p);
    for (std::ptrdiff_t dk = dk_lo; dk < dk_hi; ++dk) {
      const std::int16_t* xq =
          x + static_cast<std::size_t>(p + dk - pad) * in_stride;
      const std::int16_t* wdk =
          wtr + static_cast<std::size_t>(dk) * in_pairs * out_pad * 2;
      for (std::size_t ip = 0; ip < in_pairs; ++ip) {
        const std::int32_t x0 = xq[2 * ip];
        const std::int32_t x1 = xq[2 * ip + 1];
        if (x0 == 0 && x1 == 0) continue;
        const std::int16_t* wrow = wdk + ip * out_pad * 2;
        for (std::size_t o = 0; o < out_ch; ++o) {
          accp[o] += wrow[2 * o] * x0 + wrow[2 * o + 1] * x1;
        }
      }
    }
  }
}

namespace hd = ::reads::hls::detail;

void requant_i64_scalar(const std::int64_t* in, std::int64_t* out,
                        std::size_t n, const hd::Requant& rq, bool relu,
                        std::size_t& saturations) {
  if (relu) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = rq.apply(std::max<std::int64_t>(0, in[i]), saturations);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) out[i] = rq.apply(in[i], saturations);
  }
}

void finalize_i32_scalar(const std::int32_t* acc, std::int64_t* out,
                         std::size_t positions, std::size_t out_ch,
                         std::size_t acc_stride, const hd::Accum& ac,
                         std::size_t& overflows, std::size_t& saturations) {
  for (std::size_t p = 0; p < positions; ++p) {
    const std::int32_t* accp = acc + p * acc_stride;
    std::int64_t* yp = out + p * out_ch;
    for (std::size_t o = 0; o < out_ch; ++o) {
      yp[o] = ac.finalize(accp[o], overflows, saturations);
    }
  }
}

#if defined(READS_QKERNELS_AVX512)
void conv1d_acc_avx512(const std::int64_t* x, const std::int64_t* wtr,
                       const std::int64_t* bias_acc, std::int64_t* acc,
                       std::size_t positions, std::size_t in_ch,
                       std::size_t out_ch, std::size_t k, int shift);
void requant_i64_avx512(const std::int64_t* in, std::int64_t* out,
                        std::size_t n, const hd::Requant& rq, bool relu,
                        std::size_t& saturations);
void finalize_i32_avx512(const std::int32_t* acc, std::int64_t* out,
                         std::size_t positions, std::size_t out_ch,
                         std::size_t acc_stride, const hd::Accum& ac,
                         std::size_t& overflows, std::size_t& saturations);
void conv1d_acc_i16_avx512(const std::int16_t* x, const std::int16_t* wtr,
                           const std::int32_t* bias_acc, std::int32_t* acc,
                           std::size_t positions, std::size_t in_ch,
                           std::size_t in_stride, std::size_t out_ch,
                           std::size_t out_pad, std::size_t k, int shift);
#endif
#if defined(READS_QKERNELS_VNNI)
void conv1d_acc_i16_dp_vnni(const std::int16_t* x, const std::int16_t* wtr,
                            const std::int32_t* bias_acc, std::int32_t* acc,
                            std::size_t positions, std::size_t in_pairs,
                            std::size_t in_stride, std::size_t out_ch,
                            std::size_t out_pad, std::size_t k);
#endif

using KernelFn = void (*)(const std::int64_t*, const std::int64_t*,
                          const std::int64_t*, std::int64_t*, std::size_t,
                          std::size_t, std::size_t, std::size_t, int);
using NarrowFn = void (*)(const std::int16_t*, const std::int16_t*,
                          const std::int32_t*, std::int32_t*, std::size_t,
                          std::size_t, std::size_t, std::size_t, std::size_t,
                          std::size_t, int);
using NarrowDpFn = void (*)(const std::int16_t*, const std::int16_t*,
                            const std::int32_t*, std::int32_t*, std::size_t,
                            std::size_t, std::size_t, std::size_t,
                            std::size_t, std::size_t);
using RequantFn = void (*)(const std::int64_t*, std::int64_t*, std::size_t,
                           const hd::Requant&, bool, std::size_t&);
using FinalizeFn = void (*)(const std::int32_t*, std::int64_t*, std::size_t,
                            std::size_t, std::size_t, const hd::Accum&,
                            std::size_t&, std::size_t&);

struct Dispatch {
  KernelFn fn = conv1d_acc_scalar;
  const char* name = "scalar";
  NarrowFn narrow = conv1d_acc_i16_scalar;
  const char* narrow_name = "scalar";
  NarrowDpFn narrow_dp = conv1d_acc_i16_dp_scalar;
  const char* narrow_dp_name = "scalar";
  RequantFn requant = requant_i64_scalar;
  FinalizeFn finalize = finalize_i32_scalar;
};

Dispatch resolve() {
  Dispatch d;
#if defined(__GNUC__) && defined(__x86_64__)
  // avx512f is the foundation bit: dq/vl extend it, they do not imply it,
  // and a CPU reporting extensions without the foundation must not take
  // the 512-bit paths.
  const bool f = __builtin_cpu_supports("avx512f");
#if defined(READS_QKERNELS_AVX512)
  if (f && __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512vl")) {
    d.fn = conv1d_acc_avx512;
    d.name = "avx512";
    d.narrow = conv1d_acc_i16_avx512;
    d.narrow_name = "avx512";
    d.requant = requant_i64_avx512;
    d.finalize = finalize_i32_avx512;
  }
#endif
#if defined(READS_QKERNELS_VNNI)
  if (f && __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vl") &&
      __builtin_cpu_supports("avx512vnni")) {
    d.narrow_dp = conv1d_acc_i16_dp_vnni;
    d.narrow_dp_name = "avx512-vnni";
  }
#endif
  (void)f;
#endif
  return d;
}

const Dispatch& dispatch() {
  static const Dispatch d = resolve();
  return d;
}

}  // namespace detail

void conv1d_acc(const std::int64_t* x, const std::int64_t* wtr,
                const std::int64_t* bias_acc, std::int64_t* acc,
                std::size_t positions, std::size_t in_ch, std::size_t out_ch,
                std::size_t k, int shift) {
  detail::dispatch().fn(x, wtr, bias_acc, acc, positions, in_ch, out_ch, k,
                        shift);
}

void conv1d_acc_i16(const std::int16_t* x, const std::int16_t* wtr,
                    const std::int32_t* bias_acc, std::int32_t* acc,
                    std::size_t positions, std::size_t in_ch,
                    std::size_t in_stride, std::size_t out_ch,
                    std::size_t out_pad, std::size_t k, int shift) {
  detail::dispatch().narrow(x, wtr, bias_acc, acc, positions, in_ch,
                            in_stride, out_ch, out_pad, k, shift);
}

void conv1d_acc_i16_dp(const std::int16_t* x, const std::int16_t* wtr,
                       const std::int32_t* bias_acc, std::int32_t* acc,
                       std::size_t positions, std::size_t in_pairs,
                       std::size_t in_stride, std::size_t out_ch,
                       std::size_t out_pad, std::size_t k) {
  detail::dispatch().narrow_dp(x, wtr, bias_acc, acc, positions, in_pairs,
                               in_stride, out_ch, out_pad, k);
}

void requant_i64(const std::int64_t* in, std::int64_t* out, std::size_t n,
                 const reads::hls::detail::Requant& rq, bool relu,
                 std::size_t& saturations) {
  // shift <= -63 means every nonzero input saturates (Requant::apply's
  // k >= 63 special case), and shift >= 64 rounds (almost) everything to
  // zero; the SIMD path precomputes its constants with shifts that must
  // stay < 64 either way, so route both degenerate bands to the scalar
  // loop. Ordinary widening (0 > shift > -63) runs vectorized — PTQ specs
  // widen on most encoder-side layers, so this path is hot, not rare.
  if (rq.shift <= -63 || rq.shift >= 64) {
    detail::requant_i64_scalar(in, out, n, rq, relu, saturations);
    return;
  }
  detail::dispatch().requant(in, out, n, rq, relu, saturations);
}

void finalize_i32(const std::int32_t* acc, std::int64_t* out,
                  std::size_t positions, std::size_t out_ch,
                  std::size_t acc_stride, const reads::hls::detail::Accum& ac,
                  std::size_t& overflows, std::size_t& saturations) {
  if (ac.out.shift <= -63 || ac.out.shift >= 64) {
    detail::finalize_i32_scalar(acc, out, positions, out_ch, acc_stride, ac,
                                overflows, saturations);
    return;
  }
  detail::dispatch().finalize(acc, out, positions, out_ch, acc_stride, ac,
                              overflows, saturations);
}

const char* variant() noexcept { return detail::dispatch().name; }
const char* narrow_variant() noexcept {
  return detail::dispatch().narrow_name;
}
const char* narrow_dp_variant() noexcept {
  return detail::dispatch().narrow_dp_name;
}

}  // namespace reads::hls::kernels
