#include "hls/firmware.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/layers/activations.hpp"
#include "nn/layers/batchnorm.hpp"
#include "nn/layers/concat.hpp"
#include "nn/layers/conv1d.hpp"
#include "nn/layers/dense.hpp"
#include "nn/layers/flatten.hpp"
#include "nn/layers/pool.hpp"
#include "nn/layers/upsample.hpp"

namespace reads::hls {

std::string_view to_string(LayerKind kind) noexcept {
  switch (kind) {
    case LayerKind::kInput: return "Input";
    case LayerKind::kDense: return "Dense";
    case LayerKind::kConv1D: return "Conv1D";
    case LayerKind::kMaxPool: return "MaxPool1D";
    case LayerKind::kUpSample: return "UpSampling1D";
    case LayerKind::kConcat: return "Concatenate";
    case LayerKind::kBatchNorm: return "BatchNorm";
    case LayerKind::kRelu: return "ReLU";
    case LayerKind::kSigmoid: return "Sigmoid";
    case LayerKind::kFlatten: return "Flatten";
  }
  return "?";
}

ReusePolicy ReusePolicy::deployed_unet() {
  ReusePolicy p;
  p.default_reuse = 32;
  p.overrides = {{"bot_a", 260}, {"bot_b", 260}, {"dec2a", 260}, {"head", 260}};
  return p;
}

ReusePolicy ReusePolicy::deployed_mlp() {
  ReusePolicy p;
  p.default_reuse = 128;
  return p;
}

const FirmwareLayer& FirmwareModel::layer(const std::string& name) const {
  for (const auto& l : layers) {
    if (l.name == name) return l;
  }
  throw std::invalid_argument("FirmwareModel: no layer named '" + name + "'");
}

std::size_t FirmwareModel::weight_count() const noexcept {
  std::size_t n = 0;
  for (const auto& l : layers) n += l.weights_raw.size() + l.bias_raw.size();
  return n;
}

namespace {

std::vector<std::int64_t> quantize_all(std::span<const float> values,
                                       const fixed::FixedFormat& fmt) {
  std::vector<std::int64_t> raw;
  raw.reserve(values.size());
  for (float v : values) raw.push_back(fmt.quantize(v));
  return raw;
}

/// Quantize bias values directly at accumulator alignment (frac bits =
/// weight frac + input frac) so additions need no runtime shifts. Saturation
/// bounds come from the bias spec's width re-expressed at that alignment.
std::vector<std::int64_t> quantize_bias(std::span<const float> values,
                                        const FixedSpec& bias_spec,
                                        int acc_frac_bits) {
  // A bias_spec of <W, I> has W - I frac bits; widen/narrow to the
  // accumulator alignment while keeping the spec's value range.
  const fixed::FixedFormat value_fmt = bias_spec.format();
  std::vector<std::int64_t> raw;
  raw.reserve(values.size());
  const int shift = acc_frac_bits - value_fmt.frac_bits();
  for (float v : values) {
    std::int64_t q = value_fmt.quantize(v);
    if (shift >= 0) {
      q <<= shift;
    } else {
      q >>= -shift;
    }
    raw.push_back(q);
  }
  return raw;
}

}  // namespace

FirmwareModel compile(const nn::Model& model, const HlsConfig& config) {
  FirmwareModel fw;
  fw.config = config;

  const auto& nodes = model.nodes();
  fw.layers.reserve(nodes.size());

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto& node = nodes[i];
    FirmwareLayer fl;
    fl.name = node.name;
    fl.inputs = node.inputs;
    fl.positions = node.shape.at(0);
    fl.out_channels = node.shape.at(1);
    fl.quant = config.quant.layer(node.name);

    if (i == 0) {
      fl.kind = LayerKind::kInput;
      fl.in_channels = fl.out_channels;
      fw.input_spec = fl.quant.activation;
      fw.input_values = fl.positions * fl.out_channels;
      fw.layers.push_back(std::move(fl));
      continue;
    }

    const nn::Layer* layer = node.layer.get();
    const FixedSpec in_act_spec =
        fw.layers[node.inputs[0]].quant.activation;
    const int in_frac = in_act_spec.width - in_act_spec.int_bits;

    if (const auto* dense = dynamic_cast<const nn::Dense*>(layer)) {
      fl.kind = LayerKind::kDense;
      fl.in_channels = dense->in_features();
      fl.mults_per_output = dense->in_features() * dense->out_features();
      const auto w_fmt = fl.quant.weight.format();
      fl.weights_raw = quantize_all(dense->weight().flat(), w_fmt);
      fl.bias_frac_bits = w_fmt.frac_bits() + in_frac;
      fl.bias_raw =
          quantize_bias(dense->bias().flat(), fl.quant.bias, fl.bias_frac_bits);
    } else if (const auto* conv = dynamic_cast<const nn::Conv1D*>(layer)) {
      fl.kind = LayerKind::kConv1D;
      fl.in_channels = conv->in_channels();
      fl.kernel = conv->kernel_size();
      fl.mults_per_output =
          conv->kernel_size() * conv->in_channels() * conv->out_channels();
      const auto w_fmt = fl.quant.weight.format();
      fl.weights_raw = quantize_all(conv->weight().flat(), w_fmt);
      fl.bias_frac_bits = w_fmt.frac_bits() + in_frac;
      fl.bias_raw =
          quantize_bias(conv->bias().flat(), fl.quant.bias, fl.bias_frac_bits);
    } else if (const auto* bn = dynamic_cast<const nn::BatchNorm1D*>(layer)) {
      // Fold inference-mode BN into y = scale * x + shift.
      fl.kind = LayerKind::kBatchNorm;
      fl.in_channels = bn->channels();
      fl.mults_per_output = bn->channels();
      std::vector<float> scale(bn->channels());
      std::vector<float> shift(bn->channels());
      for (std::size_t c = 0; c < bn->channels(); ++c) {
        const double inv = 1.0 / std::sqrt(static_cast<double>(bn->running_var()[c]) +
                                           bn->epsilon());
        scale[c] = static_cast<float>(bn->gamma()[c] * inv);
        shift[c] = static_cast<float>(bn->beta()[c] -
                                      bn->running_mean()[c] * bn->gamma()[c] * inv);
      }
      const auto w_fmt = fl.quant.weight.format();
      fl.weights_raw = quantize_all(scale, w_fmt);
      fl.bias_frac_bits = w_fmt.frac_bits() + in_frac;
      fl.bias_raw = quantize_bias(shift, fl.quant.bias, fl.bias_frac_bits);
    } else if (const auto* pool = dynamic_cast<const nn::MaxPool1D*>(layer)) {
      fl.kind = LayerKind::kMaxPool;
      fl.in_channels = fl.out_channels;
      fl.factor = pool->pool_size();
    } else if (const auto* up = dynamic_cast<const nn::UpSampling1D*>(layer)) {
      fl.kind = LayerKind::kUpSample;
      fl.in_channels = fl.out_channels;
      fl.factor = up->factor();
    } else if (dynamic_cast<const nn::Concatenate*>(layer)) {
      fl.kind = LayerKind::kConcat;
      fl.in_channels = fl.out_channels;
    } else if (dynamic_cast<const nn::ReLU*>(layer)) {
      fl.kind = LayerKind::kRelu;
      fl.in_channels = fl.out_channels;
    } else if (dynamic_cast<const nn::Sigmoid*>(layer)) {
      fl.kind = LayerKind::kSigmoid;
      fl.in_channels = fl.out_channels;
    } else if (dynamic_cast<const nn::Flatten*>(layer)) {
      fl.kind = LayerKind::kFlatten;
      fl.in_channels = fl.out_channels;
    } else {
      throw std::invalid_argument("hls::compile: unsupported layer type " +
                                  std::string(layer->type()));
    }

    if (fl.mults_per_output > 0) {
      const std::size_t requested = config.reuse.requested(fl.name);
      fl.reuse = std::clamp<std::size_t>(requested, 1, fl.mults_per_output);
      fl.instantiated_mults =
          (fl.mults_per_output + fl.reuse - 1) / fl.reuse;
    }
    fw.layers.push_back(std::move(fl));
  }

  const auto& out = fw.layers.back();
  fw.output_spec = out.quant.activation;
  fw.output_values = out.positions * out.out_channels;
  return fw;
}

}  // namespace reads::hls
