// Cycle-level latency model of the NN IP core at the paper's 100 MHz clock.
//
// The firmware executes as an hls4ml-style dataflow of streaming layer
// processes; for a single frame the end-to-end latency is well approximated
// by the sequential sum of layer service times:
//
//   MAC layer:      cycles = total_macs / instantiated_mults
//                          (= output_positions * reuse)
//                   + per-position overhead (line-buffer shift, boundary
//                     muxes, weight ROM addressing)
//                   + pipeline depth (mult + adder tree + requant stages)
//   elementwise:    cycles = positions (II = 1) + small depth
//
// plus the IP-side I/O: serial reads of the input buffer and writes of the
// output buffer through the 16-bit on-chip RAM port.
#pragma once

#include <string>
#include <vector>

#include "hls/firmware.hpp"

namespace reads::hls {

struct LayerLatency {
  std::string name;
  std::size_t cycles = 0;
};

struct LatencyReport {
  std::vector<LayerLatency> layers;
  std::size_t compute_cycles = 0;  ///< NN pipeline only
  std::size_t io_cycles = 0;       ///< buffer reads/writes on the IP side
  std::size_t total_cycles = 0;
  double clock_mhz = 100.0;

  double total_ms() const {
    return static_cast<double>(total_cycles) / (clock_mhz * 1e3);
  }
  double total_us() const { return total_ms() * 1e3; }
};

struct LatencyModelParams {
  /// Extra cycles per output position of a MAC layer.
  double per_position_overhead = 10.0;
  /// Fixed pipeline fill per layer, plus ceil(log2(fan-in)) tree stages.
  double base_depth = 16.0;
  /// Initiation interval of the IP's buffer port (16-bit words / cycle).
  double io_cycles_per_word = 1.0;
};

class LatencyModel {
 public:
  explicit LatencyModel(LatencyModelParams params = {});

  LatencyReport estimate(const FirmwareModel& fw) const;

 private:
  LatencyModelParams params_;
};

}  // namespace reads::hls
