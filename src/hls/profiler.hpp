// Activation/weight range profiling — the measurement step behind the
// paper's layer-based precision customization ("we re-evaluated the maximum
// absolute output value generated inside each individual layer ... and
// adjusted each layer's precision individually").
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hls/precision.hpp"
#include "nn/model.hpp"

namespace reads::hls {

/// Observed dynamic ranges, keyed by node name.
struct Profile {
  std::map<std::string, double> max_activation;  ///< max |output| per node
  std::map<std::string, double> max_weight;      ///< max |w| per param layer
  std::map<std::string, double> max_bias;
  /// Per node: histogram over "integer bits needed" (index = int bits,
  /// sign included; index 0 unused). Lets callers size integer bits to a
  /// coverage quantile instead of the absolute maximum.
  std::map<std::string, std::array<std::uint64_t, 25>> act_int_bits_histogram;
  std::size_t calibration_frames = 0;

  /// Smallest integer-bit count covering at least `coverage` of the node's
  /// observed activations (coverage = 1.0 reproduces the max-abs rule).
  int int_bits_for_coverage(const std::string& node, double coverage) const;
};

/// Run the float model over calibration inputs and collect ranges.
Profile profile_model(const nn::Model& model,
                      const std::vector<tensor::Tensor>& calibration_inputs);

/// Build the paper's layer-based plan: every layer keeps `total_bits`, with
/// integer bits per layer sized to the profiled maxima. `extra_int_bits`
/// adds guard bits to the activation integer part (Fig. 5b studies how one
/// extra bit halves the overflow outliers). `coverage` sizes activation
/// integer bits to that quantile of observed values instead of the max
/// (1.0 = the paper's max-abs rule); trading rare saturations for fraction
/// precision is the calibration ablation of `bench_calibration`.
QuantConfig layer_based_config(const nn::Model& model, const Profile& profile,
                               int total_bits, int extra_int_bits = 0,
                               double coverage = 1.0);

}  // namespace reads::hls
