#include "hls/lanes.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "hls/accum.hpp"

namespace reads::hls {

namespace {

using detail::Accum;
using detail::Requant;

// All prover arithmetic runs in 128-bit integers: weight/product magnitudes
// are caller-controlled (property tests sweep wide specs), and a prover that
// can itself overflow proves nothing.
using Wide = __int128;

constexpr std::int64_t kI16Lo = std::numeric_limits<std::int16_t>::min();
constexpr std::int64_t kI16Hi = std::numeric_limits<std::int16_t>::max();
constexpr Wide kI32Lo = std::numeric_limits<std::int32_t>::min();
constexpr Wide kI32Hi = std::numeric_limits<std::int32_t>::max();

int frac_bits(const FixedSpec& spec) noexcept {
  return spec.width - spec.int_bits;
}

/// Saturation range of a spec: every word a Requant writes lands in here.
RawInterval spec_range(const FixedSpec& spec) {
  const Requant rq(0, spec);
  return {rq.lo, rq.hi};
}

/// Image of an interval under a Requant. apply() is monotone (rounding,
/// shifting, and clamping all preserve order), so the image is the image of
/// the endpoints.
RawInterval requant_range(const Requant& rq, RawInterval in) {
  std::size_t scratch = 0;
  return {rq.apply(in.lo, scratch), rq.apply(in.hi, scratch)};
}

/// term() on a 128-bit product: AC_TRN floor shift, exact in Wide.
Wide wide_term(const Accum& ac, Wide product) {
  if (ac.prod_shift >= 0) return product >> ac.prod_shift;
  return product << -ac.prod_shift;
}

/// Interval of (w * x) >> prod_shift over x in [in.lo, in.hi] for one fixed
/// weight word. Both the product and the shift are monotone in x (for fixed
/// w the product is linear; floor shift preserves order), so endpoints
/// suffice.
struct TermBound {
  Wide lo;
  Wide hi;
};
TermBound term_bound(const Accum& ac, std::int64_t w, RawInterval in) {
  const Wide a = wide_term(ac, Wide{w} * in.lo);
  const Wide b = wide_term(ac, Wide{w} * in.hi);
  return {std::min(a, b), std::max(a, b)};
}

/// Accumulator envelope of one Dense/Conv1D output (or one BatchNorm
/// channel): bounds over the final sum, over every partial sum a kernel can
/// form (bias first, any subset of taps in any order — conv boundary
/// positions drop taps), and over the absolute contribution total.
struct Envelope {
  Wide final_lo = 0, final_hi = 0;  ///< all terms present
  Wide part_lo = 0, part_hi = 0;    ///< any prefix/subset of terms
  Wide abs = 0;                     ///< |bias| + sum max|term|
};

void fold_term(Envelope& e, TermBound t) {
  e.final_lo += t.lo;
  e.final_hi += t.hi;
  e.part_lo += std::min<Wide>(0, t.lo);
  e.part_hi += std::max<Wide>(0, t.hi);
  e.abs += std::max(t.lo < 0 ? -t.lo : t.lo, t.hi < 0 ? -t.hi : t.hi);
}

Envelope seed_envelope(Wide bias) {
  Envelope e;
  e.final_lo = e.final_hi = e.part_lo = e.part_hi = bias;
  e.abs = bias < 0 ? -bias : bias;
  return e;
}

std::int64_t clamp_i64(Wide v) {
  constexpr Wide lo = std::numeric_limits<std::int64_t>::min();
  constexpr Wide hi = std::numeric_limits<std::int64_t>::max();
  return static_cast<std::int64_t>(std::clamp(v, lo, hi));
}

/// Map a proven pre-finalize interval through Accum::finalize. Sound only
/// when the interval cannot wrap; callers check the ring first.
RawInterval finalize_range(const Accum& ac, Wide lo, Wide hi) {
  std::size_t scratch = 0;
  return {ac.out.apply(clamp_i64(lo), scratch),
          ac.out.apply(clamp_i64(hi), scratch)};
}

RawInterval union_of(RawInterval a, RawInterval b) {
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

std::string interval_str(Wide lo, Wide hi) {
  // Decisions only ever quote values that went through clamp_i64 bounds
  // checks; format via int64 after clamping for display.
  return "[" + std::to_string(clamp_i64(lo)) + ", " +
         std::to_string(clamp_i64(hi)) + "]";
}

}  // namespace

std::string_view to_string(Lane lane) noexcept {
  switch (lane) {
    case Lane::kWide64:
      return "wide64";
    case Lane::kNarrow32:
      return "narrow32";
    case Lane::kNarrowDp:
      return "narrow32-dp";
  }
  return "?";
}

LaneReport prove_lanes(const FirmwareModel& fw) {
  LaneReport report;
  report.decisions.resize(fw.layers.size());
  report.ranges.resize(fw.layers.size());

  for (std::size_t idx = 0; idx < fw.layers.size(); ++idx) {
    const auto& l = fw.layers[idx];
    auto& decision = report.decisions[idx];
    auto& range = report.ranges[idx];
    const auto act_range = spec_range(l.quant.activation);

    if (l.kind == LayerKind::kInput) {
      // forward()/quantize_input() saturate every word into the input spec;
      // forward_raw() documents the same range as a precondition.
      range = act_range;
      decision.reason = "input: spec saturation range";
      continue;
    }

    const auto& src0 = fw.layers[l.inputs[0]];
    const RawInterval in0 = report.ranges[l.inputs[0]];
    const int in_frac = frac_bits(src0.quant.activation);

    switch (l.kind) {
      case LayerKind::kInput:
        break;  // handled above

      case LayerKind::kDense:
      case LayerKind::kConv1D: {
        decision.mac_layer = true;
        ++report.mac_layers;
        const Accum ac(l.quant.activation, frac_bits(l.quant.weight) + in_frac,
                       l.bias_frac_bits, fw.config.quant.accum_guard_bits);
        const std::size_t k = l.kind == LayerKind::kDense ? 1 : l.kernel;
        const std::size_t taps = k * l.in_channels;

        Envelope layer_env;  // union over outputs
        bool first = true;
        std::int64_t w_lo = 0, w_hi = 0;
        for (std::size_t o = 0; o < l.out_channels; ++o) {
          Envelope e = seed_envelope(
              ac.bias_shift >= 0
                  ? Wide{l.bias_raw[o]} >> ac.bias_shift
                  : Wide{l.bias_raw[o]} << -ac.bias_shift);
          for (std::size_t t = 0; t < taps; ++t) {
            const std::int64_t w = l.weights_raw[o * taps + t];
            w_lo = std::min(w_lo, w);
            w_hi = std::max(w_hi, w);
            fold_term(e, term_bound(ac, w, in0));
          }
          if (first) {
            layer_env = e;
            first = false;
          } else {
            layer_env.final_lo = std::min(layer_env.final_lo, e.final_lo);
            layer_env.final_hi = std::max(layer_env.final_hi, e.final_hi);
            layer_env.part_lo = std::min(layer_env.part_lo, e.part_lo);
            layer_env.part_hi = std::max(layer_env.part_hi, e.part_hi);
            layer_env.abs = std::max(layer_env.abs, e.abs);
          }
        }
        decision.env_lo = clamp_i64(layer_env.part_lo);
        decision.env_hi = clamp_i64(layer_env.part_hi);
        decision.abs_bound = clamp_i64(layer_env.abs);

        // Output range: conv boundary positions drop taps, so the subset
        // envelope bounds their sums; dense always sums every tap.
        const Wide sum_lo =
            l.kind == LayerKind::kDense ? layer_env.final_lo
                                        : layer_env.part_lo;
        const Wide sum_hi =
            l.kind == LayerKind::kDense ? layer_env.final_hi
                                        : layer_env.part_hi;
        if (sum_lo >= ac.ring_lo && sum_hi <= ac.ring_hi) {
          range = finalize_range(ac, sum_lo, sum_hi);
        } else {
          range = act_range;  // may wrap: only the spec bound survives
        }

        // Narrow-lane verdict.
        if (w_lo < kI16Lo || w_hi > kI16Hi) {
          decision.reason = "wide64: weights exceed int16";
        } else if (in0.lo < kI16Lo || in0.hi > kI16Hi) {
          decision.reason = "wide64: source activations exceed int16";
        } else if (ac.prod_shift < 0 || ac.prod_shift > 31) {
          decision.reason = "wide64: product shift " +
                            std::to_string(ac.prod_shift) +
                            " outside [0, 31]";
        } else if (layer_env.part_lo < kI32Lo || layer_env.part_hi > kI32Hi) {
          decision.reason =
              "wide64: accumulator envelope " +
              interval_str(layer_env.part_lo, layer_env.part_hi) +
              " exceeds int32";
        } else if (ac.prod_shift == 0 && layer_env.abs <= kI32Hi) {
          decision.lane = Lane::kNarrowDp;
          decision.reason = "narrow32-dp: shift 0, |terms| sum " +
                            std::to_string(clamp_i64(layer_env.abs)) +
                            " fits int32";
          ++report.narrow_layers;
        } else {
          decision.lane = Lane::kNarrow32;
          decision.reason =
              "narrow32: envelope " +
              interval_str(layer_env.part_lo, layer_env.part_hi) +
              " fits int32, shift " + std::to_string(ac.prod_shift);
          ++report.narrow_layers;
        }
        break;
      }

      case LayerKind::kBatchNorm: {
        const Accum ac(l.quant.activation, frac_bits(l.quant.weight) + in_frac,
                       l.bias_frac_bits, fw.config.quant.accum_guard_bits);
        bool wraps = false;
        RawInterval out{0, 0};
        bool first = true;
        for (std::size_t c = 0; c < l.out_channels; ++c) {
          const TermBound t = term_bound(ac, l.weights_raw[c], in0);
          const Wide bias = ac.bias_shift >= 0
                                ? Wide{l.bias_raw[c]} >> ac.bias_shift
                                : Wide{l.bias_raw[c]} << -ac.bias_shift;
          const Wide lo = t.lo + bias;
          const Wide hi = t.hi + bias;
          if (lo < ac.ring_lo || hi > ac.ring_hi) {
            wraps = true;
            break;
          }
          const RawInterval r = finalize_range(ac, lo, hi);
          out = first ? r : union_of(out, r);
          first = false;
        }
        range = wraps || first ? act_range : out;
        decision.reason = "scale/shift (int64 path)";
        break;
      }

      case LayerKind::kMaxPool: {
        range = requant_range(Requant(in_frac, l.quant.activation), in0);
        decision.reason = "pool (requant image)";
        break;
      }

      case LayerKind::kUpSample: {
        range = requant_range(Requant(in_frac, l.quant.activation), in0);
        // Positions that are not a multiple of the factor leave raw zeros in
        // the tail of the output slab (the executor fills, then writes
        // in_pos * factor positions).
        const std::size_t in_pos = l.positions / l.factor;
        if (in_pos * l.factor != l.positions) {
          range.lo = std::min<std::int64_t>(range.lo, 0);
          range.hi = std::max<std::int64_t>(range.hi, 0);
        }
        decision.reason = "upsample (requant image)";
        break;
      }

      case LayerKind::kConcat: {
        const auto& src1 = fw.layers[l.inputs[1]];
        const RawInterval in1 = report.ranges[l.inputs[1]];
        range = union_of(
            requant_range(Requant(in_frac, l.quant.activation), in0),
            requant_range(
                Requant(frac_bits(src1.quant.activation), l.quant.activation),
                in1));
        decision.reason = "concat (requant image union)";
        break;
      }

      case LayerKind::kRelu: {
        const RawInterval clamped{std::max<std::int64_t>(0, in0.lo),
                                  std::max<std::int64_t>(0, in0.hi)};
        range = requant_range(Requant(in_frac, l.quant.activation), clamped);
        decision.reason = "relu (requant image of [max(0,lo), max(0,hi)])";
        break;
      }

      case LayerKind::kSigmoid: {
        // LUT entries are quantizations of sigmoid(x) in (0, 1): the output
        // format is monotone, so entries lie in [0, quantize(1.0)].
        const auto fmt = l.quant.activation.format();
        range = {0, fmt.quantize(1.0)};
        decision.reason = "sigmoid (LUT image in [0, quantize(1)])";
        break;
      }

      case LayerKind::kFlatten: {
        range = requant_range(Requant(in_frac, l.quant.activation), in0);
        decision.reason = "flatten (requant image)";
        break;
      }
    }
  }
  return report;
}

}  // namespace reads::hls
