#include "hls/precision.hpp"

#include <cmath>

namespace reads::hls {

int int_bits_for(double max_abs) noexcept {
  // Need ceil(log2(max_abs + quantum)) magnitude bits plus the sign bit.
  // For max_abs < 1 a single sign+unit bit still leaves the value
  // representable in the fraction field, so the floor is 1.
  if (!(max_abs > 0.0)) return 1;
  const int magnitude = static_cast<int>(std::ceil(std::log2(max_abs * (1.0 + 1e-9))));
  return std::max(1, magnitude + 1);
}

}  // namespace reads::hls
