// Blocked, transposed-weight integer kernels for the quantized executor.
//
// Dense and Conv1D dominate the bit-accurate forward pass. The kernels here
// work on weights transposed to (k, in, out) layout so the innermost loop
// runs over *outputs* with a contiguous weight row and a single broadcast
// activation — block-friendly for both the scalar 4-wide unroll and the
// AVX-512 path (8 accumulators per vector, vpmullq/vpsraq).
//
// Bit-exactness contract: each kernel produces, for every output, the exact
// int64 sum  bias_acc[o] + sum_taps((w * x) >> shift)  — the same value the
// reference per-output loop computes, because int64 arithmetic is exact at
// these magnitudes and addition order is therefore immaterial. The caller
// applies Accum::finalize (wrap + requant + stats counting) afterwards, so
// ForwardStats saturation/overflow counts are unchanged by construction.
#pragma once

#include <cstddef>
#include <cstdint>

namespace reads::hls::kernels {

/// 'same'-padded stride-1 Conv1D accumulator pass (Dense is the k == 1
/// case). `x` is (positions, in_ch) activations, `wtr` is the transposed
/// weight block (k, in_ch, out_ch), `bias_acc` holds per-output bias terms
/// already aligned to the accumulator, and `acc` receives the exact int64
/// accumulator value for each of positions*out_ch outputs. `shift` is the
/// product-to-accumulator alignment (Accum::prod_shift, always >= 0).
void conv1d_acc(const std::int64_t* x, const std::int64_t* wtr,
                const std::int64_t* bias_acc, std::int64_t* acc,
                std::size_t positions, std::size_t in_ch, std::size_t out_ch,
                std::size_t k, int shift);

/// Name of the kernel variant selected at runtime ("avx512" or "scalar").
const char* variant() noexcept;

}  // namespace reads::hls::kernels
