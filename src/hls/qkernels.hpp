// Blocked, transposed-weight integer kernels for the quantized executor.
//
// Dense and Conv1D dominate the bit-accurate forward pass. The kernels here
// work on weights transposed to (k, in, out) layout so the innermost loop
// runs over *outputs* with a contiguous weight row and a single broadcast
// activation — block-friendly for both the scalar unrolls and the AVX-512
// paths.
//
// Two lane widths exist:
//  - conv1d_acc: the exact int64 path (8 lanes/vector, vpmullq/vpsraq).
//    Always correct; the fallback for layers the range prover cannot clear.
//  - conv1d_acc_i16 / conv1d_acc_i16_dp: the narrow path (16 lanes/vector)
//    for layers the prover (lanes.hpp) certified: weights and activations
//    fit int16, every product fits int32 after the per-term shift, and all
//    partial sums stay inside int32 — so int32 accumulation is *exact*, not
//    approximate. The _dp variant additionally requires shift == 0 and uses
//    VNNI-style fused int16-pair dot products (vpdpwssd) where available;
//    a per-term shift cannot ride through the fused pair-sum, which is why
//    it is a separate lane.
//
// Bit-exactness contract: each kernel produces, for every output, the exact
// sum  bias_acc[o] + sum_taps((w * x) >> shift)  — the same value the
// reference per-output loop computes, because the arithmetic is exact at
// the (proven) magnitudes and addition order is therefore immaterial. The
// caller applies Accum::finalize (wrap + requant + stats counting)
// afterwards, so ForwardStats saturation/overflow counts are unchanged by
// construction.
#pragma once

#include <cstddef>
#include <cstdint>

#include "hls/accum.hpp"

namespace reads::hls::kernels {

/// 'same'-padded stride-1 Conv1D accumulator pass (Dense is the k == 1
/// case). `x` is (positions, in_ch) activations, `wtr` is the transposed
/// weight block (k, in_ch, out_ch), `bias_acc` holds per-output bias terms
/// already aligned to the accumulator, and `acc` receives the exact int64
/// accumulator value for each of positions*out_ch outputs. `shift` is the
/// product-to-accumulator alignment (Accum::prod_shift, always >= 0).
void conv1d_acc(const std::int64_t* x, const std::int64_t* wtr,
                const std::int64_t* bias_acc, std::int64_t* acc,
                std::size_t positions, std::size_t in_ch, std::size_t out_ch,
                std::size_t k, int shift);

/// Narrow-lane pass for range-prover-certified layers. `x` is (positions,
/// in_stride) int16 activations (in_stride >= in_ch; extra columns are
/// zero), `wtr` is (k, in_ch, out_pad) int16 with out_pad a multiple of 16
/// (pad columns carry zero weights), `bias_acc`/`acc` are out_pad-stride
/// int32. The AVX-512 variant computes all out_pad lanes; only the first
/// out_ch of each row are meaningful. `shift` in [0, 31] is applied per
/// product (vpmulld/vpsrad — products fit int32 by the prover's int16
/// bounds).
void conv1d_acc_i16(const std::int16_t* x, const std::int16_t* wtr,
                    const std::int32_t* bias_acc, std::int32_t* acc,
                    std::size_t positions, std::size_t in_ch,
                    std::size_t in_stride, std::size_t out_ch,
                    std::size_t out_pad, std::size_t k, int shift);

/// Dot-product narrow pass (shift == 0 only). Input channels are processed
/// as in_pairs adjacent pairs (in_stride = 2 * in_pairs; an odd channel
/// count is zero-padded), and `wtr` is pair-interleaved:
/// (k, in_pairs, out_pad, 2). Accumulation fuses each int16 pair into one
/// int32 add — exactly vpdpwssd — which the prover's absolute-sum bound
/// keeps exact.
void conv1d_acc_i16_dp(const std::int16_t* x, const std::int16_t* wtr,
                       const std::int32_t* bias_acc, std::int32_t* acc,
                       std::size_t positions, std::size_t in_pairs,
                       std::size_t in_stride, std::size_t out_ch,
                       std::size_t out_pad, std::size_t k);

/// Elementwise requant write-out: out[i] = rq.apply(relu ? max(0, in[i]) :
/// in[i]). These loops (ReLU/Flatten/Concat/UpSample) are half the frame
/// time once the MACs run narrow, so the AVX-512 variant processes 8 int64
/// lanes per step and counts saturations by mask popcount — the total is
/// identical to the scalar per-element count. Widening (rq.shift < 0) runs
/// vectorized too, saturating against pre-shift thresholds; only the
/// degenerate bands fall back to the scalar loop — shift <= -63 (every
/// nonzero input saturates) and shift >= 64 (everything rounds to zero;
/// the SIMD half-constant 2^(shift-1) would not fit an int64 lane).
void requant_i64(const std::int64_t* in, std::int64_t* out, std::size_t n,
                 const reads::hls::detail::Requant& rq, bool relu,
                 std::size_t& saturations);

/// Finalize a narrow int32 accumulator block into int64 activations:
/// out[p*out_ch + o] = ac.finalize(acc[p*acc_stride + o]) for o < out_ch,
/// with wrap (overflow) and saturation events counted exactly as the scalar
/// Accum::finalize does. Falls back to scalar only in the degenerate
/// ac.out.shift bands (<= -63 or >= 64).
void finalize_i32(const std::int32_t* acc, std::int64_t* out,
                  std::size_t positions, std::size_t out_ch,
                  std::size_t acc_stride, const reads::hls::detail::Accum& ac,
                  std::size_t& overflows, std::size_t& saturations);

/// Name of the int64 kernel variant selected at runtime ("avx512"/"scalar").
const char* variant() noexcept;
/// Same for the narrow int16 kernel ("avx512"/"scalar").
const char* narrow_variant() noexcept;
/// Same for the dot-product kernel ("avx512-vnni"/"scalar").
const char* narrow_dp_variant() noexcept;

}  // namespace reads::hls::kernels
