#include "hls/accuracy.hpp"

#include <cmath>
#include <mutex>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace reads::hls {

AccuracyReport evaluate_quantization(const nn::Model& reference,
                                     const QuantizedModel& quantized,
                                     const std::vector<tensor::Tensor>& inputs,
                                     double tolerance) {
  if (inputs.empty()) {
    throw std::invalid_argument("evaluate_quantization: no inputs");
  }
  const auto& out_shape = reference.output_shape();
  if (out_shape.size() != 2 || out_shape[1] != 2) {
    throw std::invalid_argument(
        "evaluate_quantization: model output must be (monitors, 2)");
  }
  const std::size_t monitors = out_shape[0];

  AccuracyReport report;
  report.frames = inputs.size();
  report.outputs_per_channel = inputs.size() * monitors;

  std::mutex mutex;
  std::size_t close_mi = 0;
  std::size_t close_rr = 0;
  double sum_mi = 0.0;
  double sum_rr = 0.0;

  util::parallel_for(0, inputs.size(), [&](std::size_t f) {
    const auto ref = reference.forward(inputs[f]);
    ForwardStats stats;
    const auto quant = quantized.forward(inputs[f], &stats);
    std::size_t local_close_mi = 0;
    std::size_t local_close_rr = 0;
    std::size_t local_out_mi = 0;
    std::size_t local_out_rr = 0;
    double local_sum_mi = 0.0;
    double local_sum_rr = 0.0;
    double local_max_mi = 0.0;
    double local_max_rr = 0.0;
    for (std::size_t m = 0; m < monitors; ++m) {
      const double d_mi = std::fabs(quant[m * 2 + 0] - ref[m * 2 + 0]);
      const double d_rr = std::fabs(quant[m * 2 + 1] - ref[m * 2 + 1]);
      local_sum_mi += d_mi;
      local_sum_rr += d_rr;
      local_max_mi = std::max(local_max_mi, d_mi);
      local_max_rr = std::max(local_max_rr, d_rr);
      if (d_mi <= tolerance) ++local_close_mi; else ++local_out_mi;
      if (d_rr <= tolerance) ++local_close_rr; else ++local_out_rr;
    }
    std::lock_guard lock(mutex);
    close_mi += local_close_mi;
    close_rr += local_close_rr;
    report.outliers_mi += local_out_mi;
    report.outliers_rr += local_out_rr;
    sum_mi += local_sum_mi;
    sum_rr += local_sum_rr;
    report.max_diff_mi = std::max(report.max_diff_mi, local_max_mi);
    report.max_diff_rr = std::max(report.max_diff_rr, local_max_rr);
    report.saturation_events += stats.total_saturations();
    report.overflow_events += stats.total_overflows();
  });

  const auto n = static_cast<double>(report.outputs_per_channel);
  report.accuracy_mi = static_cast<double>(close_mi) / n;
  report.accuracy_rr = static_cast<double>(close_rr) / n;
  report.mean_diff_mi = sum_mi / n;
  report.mean_diff_rr = sum_rr / n;
  return report;
}

}  // namespace reads::hls
