#include "hls/accuracy.hpp"

#include <cmath>
#include <stdexcept>

namespace reads::hls {

AccuracyReport evaluate_quantization(const nn::Model& reference,
                                     const QuantizedModel& quantized,
                                     const std::vector<tensor::Tensor>& inputs,
                                     double tolerance) {
  if (inputs.empty()) {
    throw std::invalid_argument("evaluate_quantization: no inputs");
  }
  const auto& out_shape = reference.output_shape();
  if (out_shape.size() != 2 || out_shape[1] != 2) {
    throw std::invalid_argument(
        "evaluate_quantization: model output must be (monitors, 2)");
  }
  const std::size_t monitors = out_shape[0];

  AccuracyReport report;
  report.frames = inputs.size();
  report.outputs_per_channel = inputs.size() * monitors;

  // Both sweeps run batched on the thread pool (workers reuse per-thread
  // scratch); the elementwise comparison is cheap and stays serial.
  const auto refs = reference.forward_batch(inputs);
  ForwardStats stats;
  const auto quants = quantized.forward_batch(inputs, &stats);
  report.saturation_events = stats.total_saturations();
  report.overflow_events = stats.total_overflows();

  std::size_t close_mi = 0;
  std::size_t close_rr = 0;
  double sum_mi = 0.0;
  double sum_rr = 0.0;
  for (std::size_t f = 0; f < inputs.size(); ++f) {
    const auto& ref = refs[f];
    const auto& quant = quants[f];
    for (std::size_t m = 0; m < monitors; ++m) {
      const double d_mi = std::fabs(quant[m * 2 + 0] - ref[m * 2 + 0]);
      const double d_rr = std::fabs(quant[m * 2 + 1] - ref[m * 2 + 1]);
      sum_mi += d_mi;
      sum_rr += d_rr;
      report.max_diff_mi = std::max(report.max_diff_mi, d_mi);
      report.max_diff_rr = std::max(report.max_diff_rr, d_rr);
      if (d_mi <= tolerance) ++close_mi; else ++report.outliers_mi;
      if (d_rr <= tolerance) ++close_rr; else ++report.outliers_rr;
    }
  }

  const auto n = static_cast<double>(report.outputs_per_channel);
  report.accuracy_mi = static_cast<double>(close_mi) / n;
  report.accuracy_rr = static_cast<double>(close_rr) / n;
  report.mean_diff_mi = sum_mi / n;
  report.mean_diff_rr = sum_rr / n;
  return report;
}

}  // namespace reads::hls
