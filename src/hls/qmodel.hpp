// Bit-accurate executor for a FirmwareModel.
//
// All arithmetic is integer: activations and weights are raw two's-
// complement words at their layer's FixedSpec scaling; multiply-accumulate
// happens in a wide (int64) accumulator exactly like an HLS accumulator
// sized to avoid overflow; the write-out re-quantizes into the layer's
// activation spec (round-to-nearest, saturating), which is where the
// paper's quantization error and overflow outliers come from.
//
// Sigmoid is evaluated through a 1024-entry lookup table over [-8, 8),
// matching the hls4ml implementation of activation tables.
#pragma once

#include <cstdint>
#include <vector>

#include "hls/firmware.hpp"
#include "tensor/tensor.hpp"

namespace reads::hls {

using tensor::Tensor;

/// Per-forward instrumentation (overflow analysis for Fig. 5b).
struct ForwardStats {
  /// Saturation events at layer write-out, per firmware layer.
  std::vector<std::size_t> saturations;
  /// Accumulator wrap-arounds ("inner layer overflows"), per layer.
  std::vector<std::size_t> overflows;
  std::size_t total_saturations() const noexcept {
    std::size_t n = 0;
    for (auto s : saturations) n += s;
    return n;
  }
  std::size_t total_overflows() const noexcept {
    std::size_t n = 0;
    for (auto s : overflows) n += s;
    return n;
  }
};

class QuantizedModel {
 public:
  explicit QuantizedModel(FirmwareModel firmware);

  const FirmwareModel& firmware() const noexcept { return fw_; }

  /// Quantize the float frame to the input spec, run the integer pipeline,
  /// and return the dequantized float output (positions, channels).
  Tensor forward(const Tensor& input, ForwardStats* stats = nullptr) const;

  /// Raw 16-bit-style interface used by the SoC simulation: input words are
  /// already quantized at the input spec; outputs come back raw at the
  /// output spec.
  std::vector<std::int64_t> forward_raw(
      const std::vector<std::int64_t>& input_raw,
      ForwardStats* stats = nullptr) const;

  /// Quantize a float frame into raw input words (what the HPS does before
  /// writing the input buffer).
  std::vector<std::int64_t> quantize_input(const Tensor& input) const;
  /// Dequantize raw output words (what the HPS does after reading back).
  Tensor dequantize_output(const std::vector<std::int64_t>& raw) const;

 private:
  struct LayerIo {
    std::size_t positions;
    std::size_t channels;
  };

  void run_layer(std::size_t idx,
                 const std::vector<std::vector<std::int64_t>>& acts,
                 std::vector<std::int64_t>& out, ForwardStats* stats) const;

  FirmwareModel fw_;
  std::vector<LayerIo> io_;
  /// Sigmoid table: raw output-spec words, one per bucket over [-8, 8).
  std::vector<std::vector<std::int64_t>> sigmoid_tables_;  // per layer
  static constexpr std::size_t kSigmoidTableSize = 1024;
  static constexpr double kSigmoidRange = 8.0;
};

}  // namespace reads::hls
