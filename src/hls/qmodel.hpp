// Bit-accurate executor for a FirmwareModel.
//
// All arithmetic is integer: activations and weights are raw two's-
// complement words at their layer's FixedSpec scaling; multiply-accumulate
// happens in a wide (int64) accumulator exactly like an HLS accumulator
// sized to avoid overflow; the write-out re-quantizes into the layer's
// activation spec (round-to-nearest, saturating), which is where the
// paper's quantization error and overflow outliers come from.
//
// Hot path: forward_raw() runs all layers over a per-thread scratch arena
// (one flat int64 block, offsets precomputed per layer — zero allocations
// per frame) and dispatches Dense/Conv1D through blocked transposed-weight
// kernels (see qkernels.hpp). forward_raw_reference() keeps the original
// per-layer-vector implementation; the two are bit-identical (outputs and
// ForwardStats counters), which tests assert and bench_kernels times.
//
// Sigmoid is evaluated through a 1024-entry lookup table over [-8, 8),
// matching the hls4ml implementation of activation tables.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hls/firmware.hpp"
#include "hls/lanes.hpp"
#include "tensor/tensor.hpp"
#include "util/thread_pool.hpp"

namespace reads::hls {

using tensor::Tensor;

/// Per-forward instrumentation (overflow analysis for Fig. 5b).
struct ForwardStats {
  /// Saturation events at layer write-out, per firmware layer.
  std::vector<std::size_t> saturations;
  /// Accumulator wrap-arounds ("inner layer overflows"), per layer.
  std::vector<std::size_t> overflows;
  std::size_t total_saturations() const noexcept {
    std::size_t n = 0;
    for (auto s : saturations) n += s;
    return n;
  }
  std::size_t total_overflows() const noexcept {
    std::size_t n = 0;
    for (auto s : overflows) n += s;
    return n;
  }
};

class QuantizedModel {
 public:
  explicit QuantizedModel(FirmwareModel firmware);

  const FirmwareModel& firmware() const noexcept { return fw_; }

  /// Quantize the float frame to the input spec, run the integer pipeline,
  /// and return the dequantized float output (positions, channels).
  Tensor forward(const Tensor& input, ForwardStats* stats = nullptr) const;

  /// forward() into a caller-owned output tensor: when `out` already holds
  /// positions*channels elements its storage is reused, so steady-state
  /// serving does zero per-frame heap allocations on this path.
  void forward_into(const Tensor& input, Tensor& out,
                    ForwardStats* stats = nullptr) const;

  /// The range prover's per-layer verdicts (which layers run narrow int32
  /// lanes vs the wide int64 path, and why).
  const LaneReport& lanes() const noexcept { return lanes_; }

  /// Run many frames through the quantized pipeline, each worker reusing
  /// its own scratch arena. Per-frame stats are summed into `stats`
  /// (counter sums are order-independent, so the result is deterministic
  /// and equal to sequential per-frame accumulation). `exec` selects the
  /// global thread pool (default) or the calling thread only — serving
  /// replicas use Exec::kCaller so micro-batches stay on the replica's
  /// core. Outputs are bit-identical either way.
  std::vector<Tensor> forward_batch(std::span<const Tensor> inputs,
                                    ForwardStats* stats = nullptr,
                                    util::Exec exec = util::Exec::kPool) const;

  /// Raw 16-bit-style interface used by the SoC simulation: input words are
  /// already quantized at the input spec; outputs come back raw at the
  /// output spec.
  std::vector<std::int64_t> forward_raw(
      const std::vector<std::int64_t>& input_raw,
      ForwardStats* stats = nullptr) const;

  /// The original (seed) executor: per-layer vectors, naive per-output
  /// loops. Kept as the bit-exactness oracle for the blocked kernels and as
  /// the baseline bench_kernels measures speedup against.
  std::vector<std::int64_t> forward_raw_reference(
      const std::vector<std::int64_t>& input_raw,
      ForwardStats* stats = nullptr) const;

  /// Quantize a float frame into raw input words (what the HPS does before
  /// writing the input buffer).
  std::vector<std::int64_t> quantize_input(const Tensor& input) const;
  /// Dequantize raw output words (what the HPS does after reading back).
  Tensor dequantize_output(const std::vector<std::int64_t>& raw) const;

 private:
  struct LayerIo {
    std::size_t positions;
    std::size_t channels;
  };

  /// Precomputed hot-path plan for a Dense/Conv1D layer: weights transposed
  /// to (k, in, out) and biases pre-aligned to the accumulator. Layers the
  /// range prover certified carry int16 weights / int32 biases instead
  /// (padded to out_pad, a multiple of 16, so the AVX-512 narrow kernels
  /// need no masked tails); unproven layers keep the exact int64 blocks.
  struct KernelPlan {
    bool use_kernel = false;
    Lane lane = Lane::kWide64;
    // Wide path:
    std::vector<std::int64_t> wtr;
    std::vector<std::int64_t> bias_acc;
    // Narrow path:
    std::vector<std::int16_t> wtr16;   ///< (k, in, out_pad) or pair-interleaved
    std::vector<std::int32_t> bias32;  ///< out_pad wide, pad lanes zero
    std::size_t out_pad = 0;
    std::size_t in_stride = 0;  ///< int16 activation row stride (>= in_ch)
  };

  void prepare_stats(ForwardStats* stats) const;
  /// Run layer `idx` on the flat activation block (fast path).
  void run_layer_fast(std::size_t idx, std::int64_t* acts,
                      ForwardStats* stats) const;
  /// Seed implementation on per-layer vectors (reference path).
  void run_layer_reference(std::size_t idx,
                           const std::vector<std::vector<std::int64_t>>& acts,
                           std::vector<std::int64_t>& out,
                           ForwardStats* stats) const;
  /// Execute the pipeline over a flat activation block whose input slot is
  /// already populated; returns a pointer to the output slot.
  const std::int64_t* execute(std::int64_t* acts, ForwardStats* stats) const;

  FirmwareModel fw_;
  std::vector<LayerIo> io_;
  std::vector<std::size_t> act_offset_;  ///< per-layer slot in the arena
  std::size_t act_words_ = 0;            ///< total arena words per frame
  /// Extra arena words for the widest narrow layer's int16 activation copy
  /// and int32 accumulator scratch (allocated per layer, nested scope).
  std::size_t narrow_words_ = 0;
  LaneReport lanes_;
  std::vector<KernelPlan> plans_;
  /// Sigmoid table: raw output-spec words, one per bucket over [-8, 8).
  std::vector<std::vector<std::int64_t>> sigmoid_tables_;  // per layer
  static constexpr std::size_t kSigmoidTableSize = 1024;
  static constexpr double kSigmoidRange = 8.0;
};

}  // namespace reads::hls
