// HLS C++ code generation — the artifact hls4ml actually produces.
//
// Given a FirmwareModel, emit an Intel-HLS-compiler-style C++ project:
//   parameters.h  per-layer ac_fixed typedefs and geometry constants
//   weights.h     quantized weight/bias ROMs as raw two's-complement words
//   firmware.cpp  the component function: memory-mapped host interface,
//                 per-layer loop nests with reuse-factor unroll pragmas,
//                 wrap-mode accumulators, and the sigmoid LUT
//
// The emitted source mirrors this repository's bit-accurate executor
// one-to-one (same specs, same accumulator semantics, same LUT), so a build
// of the generated project under the Intel HLS compiler would reproduce the
// QuantizedModel outputs. Synthesis itself needs the vendor toolchain, which
// is exactly the hardware gate this repository simulates around.
#pragma once

#include <string>

#include "hls/firmware.hpp"

namespace reads::hls {

struct GeneratedProject {
  std::string parameters_h;
  std::string weights_h;
  std::string nnet_layers_h;  ///< the layer loop-nest template library
  std::string firmware_cpp;
  std::string readme;
};

GeneratedProject generate_project(const FirmwareModel& fw,
                                  const std::string& component_name = "nn_ip");

/// Write the four files into `directory` (created if missing).
void write_project(const FirmwareModel& fw, const std::string& directory,
                   const std::string& component_name = "nn_ip");

}  // namespace reads::hls
