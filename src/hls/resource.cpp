#include "hls/resource.hpp"

#include <cmath>

namespace reads::hls {

DeviceSpec DeviceSpec::arria10_sx660() {
  DeviceSpec d;
  d.name = "Intel Arria 10 SX 660 (Achilles SoM)";
  d.alms = 251'160;
  d.aluts = 502'320;
  d.dsp_blocks = 1'687;
  d.m20k_blocks = 2'131;
  d.bram_bits = d.m20k_blocks * 20'480;
  d.pins = 597;
  d.plls = 64;
  return d;
}

DeviceSpec DeviceSpec::cyclone5() {
  DeviceSpec d;
  d.name = "Intel Cyclone V SE A6";
  d.alms = 41'910;
  d.aluts = 83'820;
  d.dsp_blocks = 112;
  d.m20k_blocks = 553;  // M10K blocks, treated uniformly
  d.bram_bits = d.m20k_blocks * 10'240;
  d.pins = 288;
  d.plls = 6;
  return d;
}

ResourceModel::ResourceModel(DeviceSpec device, ResourceModelParams params)
    : device_(std::move(device)), params_(params) {}

ResourceReport ResourceModel::estimate(const FirmwareModel& fw) const {
  ResourceReport report;
  report.device = device_;

  std::size_t dsp_remaining = device_.dsp_blocks;

  for (std::size_t i = 1; i < fw.layers.size(); ++i) {
    const auto& l = fw.layers[i];
    LayerResources lr;
    lr.name = l.name;

    const int ww = l.quant.weight.width;
    const auto& src = fw.layers[l.inputs[0]];
    const int wa = src.quant.activation.width;

    if (l.instantiated_mults > 0) {
      const bool eligible =
          ww <= params_.dsp_width_limit && wa <= params_.dsp_width_limit;
      std::size_t on_dsp = 0;
      if (eligible) {
        on_dsp = static_cast<std::size_t>(
            std::llround(params_.dsp_map_fraction *
                         static_cast<double>(l.instantiated_mults)));
        const std::size_t dsp_blocks_needed =
            (on_dsp + params_.mults_per_dsp - 1) / params_.mults_per_dsp;
        const std::size_t dsp_blocks_granted =
            std::min(dsp_blocks_needed, dsp_remaining);
        on_dsp = std::min(on_dsp, dsp_blocks_granted * params_.mults_per_dsp);
        lr.dsps = dsp_blocks_granted;
        dsp_remaining -= dsp_blocks_granted;
      }
      lr.mults_dsp = on_dsp;
      lr.mults_soft = l.instantiated_mults - on_dsp;

      const double mult_coeff =
          eligible ? params_.lut_mult_coeff : params_.lut_mult_wide_coeff;
      lr.aluts += static_cast<std::size_t>(
          std::llround(static_cast<double>(lr.mults_soft) * mult_coeff *
                       static_cast<double>(ww) * static_cast<double>(wa)));

      // Accumulator slices: one per instantiated multiplier, wide enough
      // for the full dot product.
      const double fan_in = std::max<double>(1.0, static_cast<double>(
          l.kind == LayerKind::kConv1D ? l.kernel * l.in_channels
                                       : l.in_channels));
      const double acc_width = ww + wa + std::ceil(std::log2(fan_in + 1.0));
      lr.aluts += static_cast<std::size_t>(
          std::llround(static_cast<double>(l.instantiated_mults) * acc_width *
                       params_.acc_coeff));

      // Weight ROM partitions: one per instantiated multiplier.
      lr.ram_blocks = l.instantiated_mults;
    }

    // Streaming/control overhead for every layer in the dataflow region,
    // plus inter-layer FIFOs.
    lr.aluts += params_.layer_overhead_aluts;
    lr.ram_blocks += 1;

    // Alignment shifters when the producer/consumer activation formats
    // differ (the layer-based strategy's small overhead vs. uniform).
    for (auto in : l.inputs) {
      const auto& p = fw.layers[in].quant.activation;
      const auto& a = l.quant.activation;
      const int delta = std::abs((p.width - p.int_bits) - (a.width - a.int_bits)) +
                        std::abs(p.int_bits - a.int_bits);
      if (delta > 0) {
        lr.aluts += static_cast<std::size_t>(std::llround(
            params_.align_coeff * delta *
            static_cast<double>(std::max<std::size_t>(1, l.out_channels))));
      }
    }

    lr.bram_bits = static_cast<std::size_t>(
        std::llround(static_cast<double>(lr.ram_blocks) * params_.m20k_fill_bits));
    lr.registers = static_cast<std::size_t>(
        std::llround(static_cast<double>(lr.aluts) * params_.regs_per_alut));

    report.kernel_aluts += lr.aluts;
    report.total_dsps += lr.dsps;
    report.total_ram_blocks += lr.ram_blocks;
    report.total_bram_bits += lr.bram_bits;
    report.total_registers += lr.registers;
    report.layers.push_back(std::move(lr));
  }

  report.platform_aluts = params_.platform_aluts;
  report.total_aluts = report.kernel_aluts + report.platform_aluts;
  report.total_ram_blocks += params_.platform_ram_blocks;
  report.total_bram_bits += static_cast<std::size_t>(std::llround(
      static_cast<double>(params_.platform_ram_blocks) * params_.m20k_fill_bits));
  report.total_registers += static_cast<std::size_t>(
      std::llround(static_cast<double>(params_.platform_aluts) * params_.regs_per_alut));
  report.total_alms = static_cast<std::size_t>(std::llround(
      static_cast<double>(report.total_aluts) / params_.aluts_per_alm));
  return report;
}

}  // namespace reads::hls
