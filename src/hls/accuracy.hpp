// The paper's quantization accuracy metrics.
//
// Accuracy (Table II): an output is "close enough" when the quantized model
// output is within 0.20 of the float reference (full range is [0, 1]);
// accuracy is the fraction of close-enough outputs, reported separately for
// the MI channel and the RR channel of every monitor.
//
// Fig. 5a: mean |quantized - float| per channel vs total bits.
// Fig. 5b: outliers (|diff| > threshold, "abnormal points") vs total bits.
#pragma once

#include <cstddef>
#include <vector>

#include "hls/qmodel.hpp"
#include "nn/model.hpp"

namespace reads::hls {

struct AccuracyReport {
  double accuracy_mi = 0.0;      ///< fraction within tolerance, MI channel
  double accuracy_rr = 0.0;
  double mean_diff_mi = 0.0;     ///< mean |quant - float|
  double mean_diff_rr = 0.0;
  double max_diff_mi = 0.0;
  double max_diff_rr = 0.0;
  std::size_t outliers_mi = 0;   ///< |diff| > tolerance counts
  std::size_t outliers_rr = 0;
  std::size_t frames = 0;
  std::size_t outputs_per_channel = 0;  ///< frames * monitors
  std::size_t saturation_events = 0;    ///< write-out saturations observed
  std::size_t overflow_events = 0;      ///< accumulator wrap-arounds observed

  std::size_t outliers_total() const noexcept {
    return outliers_mi + outliers_rr;
  }
};

/// Compare the quantized firmware against its float reference over a set of
/// (already standardized) input frames. `tolerance` is the paper's 0.20.
/// Outputs must be (monitors, 2) tensors: channel 0 = MI, channel 1 = RR.
AccuracyReport evaluate_quantization(const nn::Model& reference,
                                     const QuantizedModel& quantized,
                                     const std::vector<tensor::Tensor>& inputs,
                                     double tolerance = 0.20);

}  // namespace reads::hls
