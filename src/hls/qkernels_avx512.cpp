// AVX-512 variant of the transposed-weight Conv1D/Dense accumulator kernel.
// This translation unit is compiled with -mavx512f -mavx512dq -mavx512vl
// (see src/hls/CMakeLists.txt) and is only ever called after a runtime
// __builtin_cpu_supports check in qkernels.cpp.
//
// All lane arithmetic is exact int64 (vpmullq products fit comfortably:
// |w|, |x| < 2^24, so |w*x| < 2^48; vpsraq is the same floor shift as the
// scalar `>>`), so the per-output sums — and therefore the finalize-stage
// overflow/saturation counts — are bit-identical to the scalar kernel.
#if defined(READS_QKERNELS_AVX512)

#include <immintrin.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "hls/accum.hpp"

namespace reads::hls::kernels::detail {

namespace hd = ::reads::hls::detail;

void conv1d_acc_avx512(const std::int64_t* x, const std::int64_t* wtr,
                       const std::int64_t* bias_acc, std::int64_t* acc,
                       std::size_t positions, std::size_t in_ch,
                       std::size_t out_ch, std::size_t k, int shift) {
  const auto pad = static_cast<std::ptrdiff_t>(k / 2);
  const auto pos = static_cast<std::ptrdiff_t>(positions);
  const auto kk = static_cast<std::ptrdiff_t>(k);
  const __m128i shift_cnt = _mm_cvtsi32_si128(shift);
  const std::size_t o_main = out_ch & ~std::size_t{7};
  const auto tail_mask =
      static_cast<__mmask8>((1u << (out_ch - o_main)) - 1u);
  for (std::ptrdiff_t p = 0; p < pos; ++p) {
    std::int64_t* accp = acc + static_cast<std::size_t>(p) * out_ch;
    std::copy(bias_acc, bias_acc + out_ch, accp);
    const std::ptrdiff_t dk_lo = std::max<std::ptrdiff_t>(0, pad - p);
    const std::ptrdiff_t dk_hi = std::min<std::ptrdiff_t>(kk, pos + pad - p);
    for (std::ptrdiff_t dk = dk_lo; dk < dk_hi; ++dk) {
      const std::int64_t* xq =
          x + static_cast<std::size_t>(p + dk - pad) * in_ch;
      const std::int64_t* wdk =
          wtr + static_cast<std::size_t>(dk) * in_ch * out_ch;
      for (std::size_t i = 0; i < in_ch; ++i) {
        const std::int64_t xv = xq[i];
        if (xv == 0) continue;
        const __m512i xvec = _mm512_set1_epi64(xv);
        const std::int64_t* wrow = wdk + i * out_ch;
        std::size_t o = 0;
        for (; o < o_main; o += 8) {
          const __m512i w = _mm512_loadu_si512(wrow + o);
          const __m512i term =
              _mm512_sra_epi64(_mm512_mullo_epi64(w, xvec), shift_cnt);
          const __m512i a = _mm512_loadu_si512(accp + o);
          _mm512_storeu_si512(accp + o, _mm512_add_epi64(a, term));
        }
        if (tail_mask) {
          const __m512i w = _mm512_maskz_loadu_epi64(tail_mask, wrow + o);
          const __m512i term =
              _mm512_sra_epi64(_mm512_mullo_epi64(w, xvec), shift_cnt);
          const __m512i a = _mm512_maskz_loadu_epi64(tail_mask, accp + o);
          _mm512_mask_storeu_epi64(accp + o, tail_mask,
                                   _mm512_add_epi64(a, term));
        }
      }
    }
  }
}

namespace {

// Precomputed 8-lane constants for one Requant. The widening thresholds
// mirror Requant::apply exactly: v << k saturates iff v lies outside
// [ceil(lo / 2^k), hi >> k], evaluated BEFORE the shift so no lane ever
// overflows int64. Built once per call, reused for every vector.
struct RQ8 {
  int shift;
  __m128i cnt;                // |shift| as a shift count
  __m512i vhalf;              // rounding bias, shift > 0 only
  __m512i vlo, vhi;           // destination clamp range
  __m512i vlo_thr, vhi_thr;   // pre-shift thresholds, shift < 0 only

  explicit RQ8(const hd::Requant& rq)
      : shift(rq.shift),
        cnt(_mm_cvtsi32_si128(rq.shift >= 0 ? rq.shift : -rq.shift)),
        vhalf(_mm512_set1_epi64(
            rq.shift > 0 ? std::int64_t{1} << (rq.shift - 1) : 0)),
        vlo(_mm512_set1_epi64(rq.lo)),
        vhi(_mm512_set1_epi64(rq.hi)),
        vlo_thr(_mm512_setzero_si512()),
        vhi_thr(_mm512_setzero_si512()) {
    if (shift < 0) {
      const int k = -shift;  // < 63: the wrapper routes k >= 63 to scalar
      const std::int64_t hi_thr = rq.hi >> k;
      const std::int64_t lo_floor = rq.lo >> k;
      const std::int64_t lo_thr =
          lo_floor * (std::int64_t{1} << k) == rq.lo ? lo_floor
                                                     : lo_floor + 1;
      vlo_thr = _mm512_set1_epi64(lo_thr);
      vhi_thr = _mm512_set1_epi64(hi_thr);
    }
  }
};

// 8-lane Requant::apply. shift > 0: round-to-nearest half-away-from-zero
// via |v| (exactly the scalar's two-branch rounding), then clamp. shift < 0
// (widening): saturate against the pre-shift thresholds and left-shift the
// in-range lanes — in-range results land inside [lo, hi] by construction,
// so the final clamp is skipped just like the scalar early returns. Either
// way `sat` reports the would-saturate lanes; popcounting it gives the same
// saturation total as the scalar per-element counter.
inline __m512i requant8(__m512i v, const RQ8& rq, __mmask8& sat) {
  if (rq.shift < 0) {
    const auto hi_m = _mm512_cmplt_epi64_mask(rq.vhi_thr, v);
    const auto lo_m = _mm512_cmplt_epi64_mask(v, rq.vlo_thr);
    sat = static_cast<__mmask8>(hi_m | lo_m);
    v = _mm512_sll_epi64(v, rq.cnt);
    v = _mm512_mask_mov_epi64(v, hi_m, rq.vhi);
    v = _mm512_mask_mov_epi64(v, lo_m, rq.vlo);
    return v;
  }
  if (rq.shift > 0) {
    const __m512i a = _mm512_abs_epi64(v);
    // a + half >= 0, so the logical shift is the arithmetic one.
    const __m512i t = _mm512_srl_epi64(_mm512_add_epi64(a, rq.vhalf), rq.cnt);
    const __mmask8 neg =
        _mm512_cmplt_epi64_mask(v, _mm512_setzero_si512());
    v = _mm512_mask_sub_epi64(t, neg, _mm512_setzero_si512(), t);
  }
  sat = static_cast<__mmask8>(_mm512_cmplt_epi64_mask(v, rq.vlo) |
                              _mm512_cmplt_epi64_mask(rq.vhi, v));
  v = _mm512_max_epi64(_mm512_min_epi64(v, rq.vhi), rq.vlo);
  return v;
}

}  // namespace

void requant_i64_avx512(const std::int64_t* in, std::int64_t* out,
                        std::size_t n, const hd::Requant& rq, bool relu,
                        std::size_t& saturations) {
  const RQ8 r8(rq);  // |shift| < 63 (the wrapper routes shift <= -63 away)
  const __m512i zero = _mm512_setzero_si512();
  std::size_t sat = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i v = _mm512_loadu_si512(in + i);
    if (relu) v = _mm512_max_epi64(v, zero);
    __mmask8 m;
    v = requant8(v, r8, m);
    sat += static_cast<std::size_t>(__builtin_popcount(m));
    _mm512_storeu_si512(out + i, v);
  }
  for (; i < n; ++i) {
    const std::int64_t v = relu ? std::max<std::int64_t>(0, in[i]) : in[i];
    out[i] = rq.apply(v, sat);
  }
  saturations += sat;
}

void finalize_i32_avx512(const std::int32_t* acc, std::int64_t* out,
                         std::size_t positions, std::size_t out_ch,
                         std::size_t acc_stride, const hd::Accum& ac,
                         std::size_t& overflows, std::size_t& saturations) {
  const int rb = ac.ring_bits;
  const bool can_wrap = rb < 64;
  const __m128i wrap_cnt = _mm_cvtsi32_si128(can_wrap ? 64 - rb : 0);
  const __m512i ring_lo = _mm512_set1_epi64(ac.ring_lo);
  const __m512i ring_hi = _mm512_set1_epi64(ac.ring_hi);
  const RQ8 r8(ac.out);  // |shift| < 63 (wrapper routes shift <= -63 away)
  std::size_t ovf = 0;
  std::size_t sat = 0;
  const std::size_t o_main = out_ch & ~std::size_t{7};
  for (std::size_t p = 0; p < positions; ++p) {
    const std::int32_t* ap = acc + p * acc_stride;
    std::int64_t* yp = out + p * out_ch;
    std::size_t o = 0;
    for (; o < o_main; o += 8) {
      __m512i v = _mm512_cvtepi32_epi64(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ap + o)));
      if (can_wrap) {
        const auto w = static_cast<__mmask8>(
            _mm512_cmplt_epi64_mask(v, ring_lo) |
            _mm512_cmplt_epi64_mask(ring_hi, v));
        if (w) {
          // Sign-extend the low ring_bits: identical to the scalar
          // mask-and-or wrap.
          const __m512i wr =
              _mm512_sra_epi64(_mm512_sll_epi64(v, wrap_cnt), wrap_cnt);
          v = _mm512_mask_mov_epi64(v, w, wr);
          ovf += static_cast<std::size_t>(__builtin_popcount(w));
        }
      }
      __mmask8 m;
      v = requant8(v, r8, m);
      sat += static_cast<std::size_t>(__builtin_popcount(m));
      _mm512_storeu_si512(yp + o, v);
    }
    for (; o < out_ch; ++o) {
      yp[o] = ac.finalize(ap[o], ovf, sat);
    }
  }
  overflows += ovf;
  saturations += sat;
}

namespace {

// One pass over all positions holding NB 16-lane int32 accumulator vectors
// (up to 64 outputs) in registers across the whole tap/input-channel loop —
// the accumulators never round-trip through memory, unlike the int64 kernel
// above which loads/stores per input channel. out_pad is a multiple of 16
// (pad columns carry zero weights), so no masked tail is needed.
template <int NB>
void narrow_block_pass(const std::int16_t* x, const std::int16_t* wtr,
                       const std::int32_t* bias_acc, std::int32_t* acc,
                       std::ptrdiff_t pos, std::size_t in_ch,
                       std::size_t in_stride, std::size_t out_pad,
                       std::size_t ob, std::ptrdiff_t kk, int shift) {
  const auto pad = kk / 2;
  const __m128i shift_cnt = _mm_cvtsi32_si128(shift);
  for (std::ptrdiff_t p = 0; p < pos; ++p) {
    __m512i accv[NB];
    for (int b = 0; b < NB; ++b) {
      accv[b] = _mm512_loadu_si512(bias_acc + ob + 16 * static_cast<std::size_t>(b));
    }
    const std::ptrdiff_t dk_lo = std::max<std::ptrdiff_t>(0, pad - p);
    const std::ptrdiff_t dk_hi = std::min<std::ptrdiff_t>(kk, pos + pad - p);
    for (std::ptrdiff_t dk = dk_lo; dk < dk_hi; ++dk) {
      const std::int16_t* xq =
          x + static_cast<std::size_t>(p + dk - pad) * in_stride;
      const std::int16_t* wdk =
          wtr + static_cast<std::size_t>(dk) * in_ch * out_pad;
      for (std::size_t i = 0; i < in_ch; ++i) {
        const std::int32_t xv = xq[i];
        if (xv == 0) continue;
        const __m512i xvec = _mm512_set1_epi32(xv);
        const std::int16_t* wrow = wdk + i * out_pad + ob;
        for (int b = 0; b < NB; ++b) {
          const __m512i w = _mm512_cvtepi16_epi32(_mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(wrow + 16 * b)));
          // Products fit int32 by the prover's int16 bounds, so the low
          // 32 bits of vpmulld are the exact product; vpsrad is the same
          // floor shift as the scalar `>>`.
          const __m512i term =
              _mm512_sra_epi32(_mm512_mullo_epi32(w, xvec), shift_cnt);
          accv[b] = _mm512_add_epi32(accv[b], term);
        }
      }
    }
    std::int32_t* accp = acc + static_cast<std::size_t>(p) * out_pad + ob;
    for (int b = 0; b < NB; ++b) {
      _mm512_storeu_si512(accp + 16 * static_cast<std::size_t>(b), accv[b]);
    }
  }
}

}  // namespace

void conv1d_acc_i16_avx512(const std::int16_t* x, const std::int16_t* wtr,
                           const std::int32_t* bias_acc, std::int32_t* acc,
                           std::size_t positions, std::size_t in_ch,
                           std::size_t in_stride, std::size_t /*out_ch*/,
                           std::size_t out_pad, std::size_t k, int shift) {
  const auto pos = static_cast<std::ptrdiff_t>(positions);
  const auto kk = static_cast<std::ptrdiff_t>(k);
  std::size_t ob = 0;
  for (; ob + 64 <= out_pad; ob += 64) {
    narrow_block_pass<4>(x, wtr, bias_acc, acc, pos, in_ch, in_stride,
                         out_pad, ob, kk, shift);
  }
  switch ((out_pad - ob) / 16) {
    case 3:
      narrow_block_pass<3>(x, wtr, bias_acc, acc, pos, in_ch, in_stride,
                           out_pad, ob, kk, shift);
      break;
    case 2:
      narrow_block_pass<2>(x, wtr, bias_acc, acc, pos, in_ch, in_stride,
                           out_pad, ob, kk, shift);
      break;
    case 1:
      narrow_block_pass<1>(x, wtr, bias_acc, acc, pos, in_ch, in_stride,
                           out_pad, ob, kk, shift);
      break;
    default:
      break;
  }
}

}  // namespace reads::hls::kernels::detail

#endif  // READS_QKERNELS_AVX512
