// AVX-512 variant of the transposed-weight Conv1D/Dense accumulator kernel.
// This translation unit is compiled with -mavx512f -mavx512dq -mavx512vl
// (see src/hls/CMakeLists.txt) and is only ever called after a runtime
// __builtin_cpu_supports check in qkernels.cpp.
//
// All lane arithmetic is exact int64 (vpmullq products fit comfortably:
// |w|, |x| < 2^24, so |w*x| < 2^48; vpsraq is the same floor shift as the
// scalar `>>`), so the per-output sums — and therefore the finalize-stage
// overflow/saturation counts — are bit-identical to the scalar kernel.
#if defined(READS_QKERNELS_AVX512)

#include <immintrin.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>

namespace reads::hls::kernels::detail {

void conv1d_acc_avx512(const std::int64_t* x, const std::int64_t* wtr,
                       const std::int64_t* bias_acc, std::int64_t* acc,
                       std::size_t positions, std::size_t in_ch,
                       std::size_t out_ch, std::size_t k, int shift) {
  const auto pad = static_cast<std::ptrdiff_t>(k / 2);
  const auto pos = static_cast<std::ptrdiff_t>(positions);
  const auto kk = static_cast<std::ptrdiff_t>(k);
  const __m128i shift_cnt = _mm_cvtsi32_si128(shift);
  const std::size_t o_main = out_ch & ~std::size_t{7};
  const auto tail_mask =
      static_cast<__mmask8>((1u << (out_ch - o_main)) - 1u);
  for (std::ptrdiff_t p = 0; p < pos; ++p) {
    std::int64_t* accp = acc + static_cast<std::size_t>(p) * out_ch;
    std::copy(bias_acc, bias_acc + out_ch, accp);
    const std::ptrdiff_t dk_lo = std::max<std::ptrdiff_t>(0, pad - p);
    const std::ptrdiff_t dk_hi = std::min<std::ptrdiff_t>(kk, pos + pad - p);
    for (std::ptrdiff_t dk = dk_lo; dk < dk_hi; ++dk) {
      const std::int64_t* xq =
          x + static_cast<std::size_t>(p + dk - pad) * in_ch;
      const std::int64_t* wdk =
          wtr + static_cast<std::size_t>(dk) * in_ch * out_ch;
      for (std::size_t i = 0; i < in_ch; ++i) {
        const std::int64_t xv = xq[i];
        if (xv == 0) continue;
        const __m512i xvec = _mm512_set1_epi64(xv);
        const std::int64_t* wrow = wdk + i * out_ch;
        std::size_t o = 0;
        for (; o < o_main; o += 8) {
          const __m512i w = _mm512_loadu_si512(wrow + o);
          const __m512i term =
              _mm512_sra_epi64(_mm512_mullo_epi64(w, xvec), shift_cnt);
          const __m512i a = _mm512_loadu_si512(accp + o);
          _mm512_storeu_si512(accp + o, _mm512_add_epi64(a, term));
        }
        if (tail_mask) {
          const __m512i w = _mm512_maskz_loadu_epi64(tail_mask, wrow + o);
          const __m512i term =
              _mm512_sra_epi64(_mm512_mullo_epi64(w, xvec), shift_cnt);
          const __m512i a = _mm512_maskz_loadu_epi64(tail_mask, accp + o);
          _mm512_mask_storeu_epi64(accp + o, tail_mask,
                                   _mm512_add_epi64(a, term));
        }
      }
    }
  }
}

}  // namespace reads::hls::kernels::detail

#endif  // READS_QKERNELS_AVX512
