// GatewayDeblender — the Gateway-hosted deployment of the DeblendingSystem.
//
// Where DeblendingSystem::process() serves one blocking caller on one
// simulated SoC, GatewayDeblender stands a serve::Gateway of quantized
// replicas (each with its own copy of the deployed firmware) in front of
// the same trained model, so many concurrent client streams share the node:
// frames are standardized exactly like the blocking path, admitted or shed
// against the 3 ms deadline, micro-batched under load, and mapped back to
// the same mitigation Decision the blocking path produces — bit-identical
// probabilities for the same raw frame.
#pragma once

#include <cstdint>
#include <memory>

#include "core/deblender.hpp"
#include "serve/gateway.hpp"

namespace reads::core {

struct GatewayDeblendConfig {
  DeblendConfig deblend;
  serve::GatewayConfig gateway;
  /// Replica count; 0 selects hardware_concurrency() (at least 1).
  std::size_t replicas = 0;
};

class GatewayDeblender {
 public:
  /// Train-or-load the model, lower it once, and stand up `replicas`
  /// gateway replicas each owning a copy of the deployed firmware.
  static GatewayDeblender build(const GatewayDeblendConfig& config = {});

  /// Standardize the raw readings (the HPS pre-processing step) and submit
  /// to the gateway. Never blocks; the ticket says admitted or why not.
  serve::Ticket submit(const tensor::Tensor& raw_frame,
                       std::uint64_t stream = 0);

  /// Map a served response to the mitigation decision, with the serving
  /// latencies folded into the timing fields.
  Decision decide(const serve::Response& response) const;

  serve::Gateway& gateway() noexcept { return *gateway_; }
  const DeblendingSystem& system() const noexcept { return *system_; }
  void stop() { gateway_->stop(); }

 private:
  GatewayDeblender(GatewayDeblendConfig config,
                   std::unique_ptr<DeblendingSystem> system,
                   std::unique_ptr<serve::Gateway> gateway);

  GatewayDeblendConfig config_;
  std::unique_ptr<DeblendingSystem> system_;
  std::unique_ptr<serve::Gateway> gateway_;
};

}  // namespace reads::core
