#include "core/deblender.hpp"

#include <stdexcept>

#include "hls/profiler.hpp"

namespace reads::core {

std::string_view to_string(MitigationTarget target) noexcept {
  switch (target) {
    case MitigationTarget::kNone: return "none";
    case MitigationTarget::kMainInjector: return "MI";
    case MitigationTarget::kRecyclerRing: return "RR";
  }
  return "?";
}

std::string_view to_string(DecisionSource source) noexcept {
  switch (source) {
    case DecisionSource::kNnIp: return "nn_ip";
    case DecisionSource::kHpsFloatFallback: return "hps_float_fallback";
  }
  return "?";
}

DeblendingSystem::DeblendingSystem(DeblendConfig config, TrainedBundle bundle)
    : config_(std::move(config)), bundle_(std::move(bundle)) {
  // Profile on freshly generated calibration frames (standardized like the
  // training data) and derive the layer-based precision plan.
  const auto calib = blm::build_eval_inputs(
      config_.calibration_frames, util::derive_seed(config_.seed, 0xCA),
      bundle_.standardizer, bundle_.machine);
  const auto profile = hls::profile_model(bundle_.model, calib);

  hls::HlsConfig hls_cfg;
  hls_cfg.quant =
      hls::layer_based_config(bundle_.model, profile, config_.total_bits);
  hls_cfg.reuse = hls::ReusePolicy::deployed_unet();
  hls_cfg.clock_mhz = config_.soc.fpga.clock_mhz;

  auto firmware = hls::compile(bundle_.model, hls_cfg);
  resources_ = hls::ResourceModel().estimate(firmware);
  ip_latency_ = hls::LatencyModel(config_.latency).estimate(firmware);
  qmodel_ = std::make_shared<const hls::QuantizedModel>(std::move(firmware));
  soc_ = std::make_unique<soc::ArriaSocSystem>(
      *qmodel_, config_.soc, util::derive_seed(config_.seed, 0x50),
      config_.latency);
}

DeblendingSystem DeblendingSystem::build(const DeblendConfig& config) {
  return DeblendingSystem(config, pretrained_unet(config.model));
}

Decision decide(tensor::Tensor probabilities, double trip_threshold) {
  Decision decision;
  const std::size_t monitors = probabilities.dim(0);
  for (std::size_t m = 0; m < monitors; ++m) {
    decision.mi_score += probabilities.at(m, 0);
    decision.rr_score += probabilities.at(m, 1);
  }
  if (decision.mi_score < trip_threshold &&
      decision.rr_score < trip_threshold) {
    decision.target = MitigationTarget::kNone;
  } else if (decision.mi_score >= decision.rr_score) {
    decision.target = MitigationTarget::kMainInjector;
  } else {
    decision.target = MitigationTarget::kRecyclerRing;
  }
  decision.probabilities = std::move(probabilities);
  return decision;
}

void DeblendingSystem::swap_model(
    nn::Model float_model, train::Standardizer standardizer,
    std::shared_ptr<const hls::QuantizedModel> quantized,
    std::size_t reconfig_window_frames) {
  if (!quantized) {
    throw std::invalid_argument("swap_model: null quantized candidate");
  }
  if (pending_) {
    throw std::logic_error("swap_model: a swap is already in progress");
  }
  const auto& fw = quantized->firmware();
  const auto& cur = qmodel_->firmware();
  if (fw.input_values != cur.input_values ||
      fw.output_values != cur.output_values) {
    throw std::invalid_argument(
        "swap_model: candidate firmware I/O geometry does not match the "
        "deployed on-chip buffers");
  }
  pending_.emplace(PendingSwap{std::move(float_model), std::move(standardizer),
                               std::move(quantized)});
  soc_->begin_reconfigure(reconfig_window_frames);
}

Decision DeblendingSystem::process(const tensor::Tensor& raw_frame) {
  if (pending_ && !soc_->reconfiguring()) {
    // The PR bitstream finished streaming before this tick: land the swap.
    // Firmware, float fallback weights, and standardizer flip together, so
    // from this frame on every path — IP and HPS fallback alike — sees one
    // coherent model generation.
    soc_->install_firmware(*pending_->quantized);
    qmodel_ = std::move(pending_->quantized);
    bundle_.model = std::move(pending_->model);
    bundle_.standardizer = std::move(pending_->standardizer);
    resources_ = hls::ResourceModel().estimate(qmodel_->firmware());
    ip_latency_ = hls::LatencyModel(config_.latency).estimate(qmodel_->firmware());
    ++model_epoch_;
    pending_.reset();
  }

  // The HPS pre-processing step: standardize the raw readings exactly as
  // the training data was standardized.
  const auto frame = bundle_.standardizer.transform(raw_frame);
  auto result = soc_->process(frame);

  if (result.ip_fallback) {
    // The fabric is unavailable — wedged through every watchdog retry, or
    // mid-reconfiguration. Run the float model on the ARM core — the
    // trained weights are resident in HPS memory for exactly this
    // contingency — so a decision still goes out this tick. The timing
    // already carries any watchdog timeouts and resets plus the SoC model's
    // configured estimate of this float forward's CPU time
    // (SocParams::hps_float_forward_us), so deadline_met reflects what the
    // fallback actually costs.
    Decision decision =
        decide(bundle_.model.forward(frame), config_.trip_threshold);
    decision.timing = result.timing;
    decision.source = DecisionSource::kHpsFloatFallback;
    decision.watchdog_timeouts = result.watchdog_timeouts;
    decision.degraded = true;
    decision.reconfiguring = result.reconfiguring;
    decision.model_epoch = model_epoch_;
    return decision;
  }

  Decision decision = decide(std::move(result.output), config_.trip_threshold);
  decision.timing = result.timing;
  decision.watchdog_timeouts = result.watchdog_timeouts;
  decision.model_epoch = model_epoch_;
  return decision;
}

}  // namespace reads::core
