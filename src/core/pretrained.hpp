// Deterministic train-and-cache for the paper's two models.
//
// Every bench and example needs "the pre-trained U-Net"; training it takes
// a minute or two of CPU, so the first caller trains and caches the weights
// under a cache directory (default ./models, override with the
// READS_MODEL_CACHE environment variable) keyed by the full training
// configuration. Subsequent callers load the weights. Data generation and
// training are seeded, so the cached artifact is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "blm/data.hpp"
#include "nn/builders.hpp"
#include "nn/model.hpp"
#include "train/standardize.hpp"

namespace reads::core {

struct PretrainedOptions {
  std::size_t train_frames = 256;
  std::size_t epochs = 14;
  std::size_t batch_size = 16;
  double learning_rate = 1.5e-3;
  std::uint64_t seed = 42;
  blm::InputScaling scaling = blm::InputScaling::kStandardized;
  /// Empty = resolve from READS_MODEL_CACHE or "./models".
  std::string cache_dir;
  bool verbose = false;
};

struct TrainedBundle {
  nn::Model model;
  train::Standardizer standardizer;  ///< fitted on the raw training frames
  blm::MachineConfig machine = blm::MachineConfig::fermilab_like();
  double final_loss = 0.0;
  bool loaded_from_cache = false;
};

/// The 134,434-parameter U-Net of Table III.
TrainedBundle pretrained_unet(const PretrainedOptions& options = {});

/// The 100k-parameter MLP exploration model.
TrainedBundle pretrained_mlp(const PretrainedOptions& options = {});

/// Resolved cache directory (created if missing).
std::string model_cache_dir(const PretrainedOptions& options);

/// Format version stamped beside every cached weights file. Bump when the
/// cache contract changes (training recipe, weight layout, hashing scheme);
/// caches stamped with an older version are treated as stale — a warning
/// is printed and the model is retrained rather than trusted.
inline constexpr std::uint32_t kWeightCacheFormatVersion = 2;

/// Sidecar stamp recording the cache contract version and the FNV-1a
/// content hash of the weights the cache held when it was written.
struct CacheStamp {
  std::uint32_t format_version = 0;
  std::uint64_t weights_hash = 0;
};

/// Path of the stamp sidecar for a cached weights file ("<path>.stamp").
std::string cache_stamp_path(const std::string& weights_path);

/// Parse a stamp sidecar. nullopt when absent or unparsable (legacy cache).
std::optional<CacheStamp> read_cache_stamp(const std::string& weights_path);

/// Write the sidecar for `weights_path`, recording the current format
/// version and `model`'s content hash (nn::weights_hash).
void write_cache_stamp(const std::string& weights_path,
                       const nn::Model& model);

}  // namespace reads::core
