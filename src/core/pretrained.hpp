// Deterministic train-and-cache for the paper's two models.
//
// Every bench and example needs "the pre-trained U-Net"; training it takes
// a minute or two of CPU, so the first caller trains and caches the weights
// under a cache directory (default ./models, override with the
// READS_MODEL_CACHE environment variable) keyed by the full training
// configuration. Subsequent callers load the weights. Data generation and
// training are seeded, so the cached artifact is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <string>

#include "blm/data.hpp"
#include "nn/builders.hpp"
#include "nn/model.hpp"
#include "train/standardize.hpp"

namespace reads::core {

struct PretrainedOptions {
  std::size_t train_frames = 256;
  std::size_t epochs = 14;
  std::size_t batch_size = 16;
  double learning_rate = 1.5e-3;
  std::uint64_t seed = 42;
  blm::InputScaling scaling = blm::InputScaling::kStandardized;
  /// Empty = resolve from READS_MODEL_CACHE or "./models".
  std::string cache_dir;
  bool verbose = false;
};

struct TrainedBundle {
  nn::Model model;
  train::Standardizer standardizer;  ///< fitted on the raw training frames
  blm::MachineConfig machine = blm::MachineConfig::fermilab_like();
  double final_loss = 0.0;
  bool loaded_from_cache = false;
};

/// The 134,434-parameter U-Net of Table III.
TrainedBundle pretrained_unet(const PretrainedOptions& options = {});

/// The 100k-parameter MLP exploration model.
TrainedBundle pretrained_mlp(const PretrainedOptions& options = {});

/// Resolved cache directory (created if missing).
std::string model_cache_dir(const PretrainedOptions& options);

}  // namespace reads::core
