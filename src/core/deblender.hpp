// DeblendingSystem — the library's top-level public API.
//
// Wraps the full deployment of the paper: a trained U-Net, profiled and
// lowered to layer-based 16-bit firmware with the deployed reuse plan,
// running on the simulated Arria 10 SoC. Callers feed raw BLM frames (the
// 260 monitor readings as they arrive over Ethernet) and receive the
// per-frame mitigation decision with its latency accounting.
#pragma once

#include <memory>
#include <optional>

#include "core/pretrained.hpp"
#include "hls/accuracy.hpp"
#include "hls/firmware.hpp"
#include "hls/latency.hpp"
#include "hls/resource.hpp"
#include "soc/system.hpp"

namespace reads::core {

enum class MitigationTarget { kNone, kMainInjector, kRecyclerRing };

std::string_view to_string(MitigationTarget target) noexcept;

/// Which compute produced the probabilities behind a decision.
enum class DecisionSource : std::uint8_t {
  kNnIp,             ///< the quantized NN IP on the fabric (normal path)
  kHpsFloatFallback  ///< float model on the ARM core after the IP wedged
};

std::string_view to_string(DecisionSource source) noexcept;

struct Decision {
  tensor::Tensor probabilities;  ///< (monitors, 2) — MI, RR per monitor
  MitigationTarget target = MitigationTarget::kNone;
  double mi_score = 0.0;  ///< summed MI probability over monitors
  double rr_score = 0.0;
  soc::FrameTiming timing;
  DecisionSource source = DecisionSource::kNnIp;
  /// Watchdog expiries while serving this frame (a successful reset-and-
  /// retry reports them without degrading — the retried output is
  /// bit-identical to a clean run).
  std::size_t watchdog_timeouts = 0;
  /// True when the probabilities did not come from the deployed firmware
  /// (HPS float fallback): numerically close, but not the validated
  /// quantized pipeline, so operators must treat the decision as
  /// low-confidence.
  bool degraded = false;
  /// True when the frame landed inside a partial-reconfiguration window
  /// (a planned firmware swap, as opposed to a watchdog-exhausted wedge);
  /// implies degraded and kHpsFloatFallback.
  bool reconfiguring = false;
  /// Which installed model generation produced this decision. Starts at 1
  /// for the model the system was built with and increments on every
  /// completed swap_model(), so a decision stream can be audited for
  /// exactly when the hot-swap landed.
  std::uint64_t model_epoch = 1;
};

/// Trip logic alone: sum the per-monitor MI/RR probabilities and pick the
/// mitigation target against `trip_threshold`. Shared by the blocking
/// DeblendingSystem::process path and the gateway-served path
/// (core/serving.hpp); timing is left for the caller to fill.
Decision decide(tensor::Tensor probabilities, double trip_threshold);

struct DeblendConfig {
  PretrainedOptions model;
  int total_bits = 16;
  /// Monitors whose summed probability must exceed this for a trip.
  double trip_threshold = 2.0;
  std::size_t calibration_frames = 64;
  soc::SocParams soc;
  hls::LatencyModelParams latency;
  std::uint64_t seed = 7;
};

class DeblendingSystem {
 public:
  /// Train-or-load the model, profile it, lower it, and stand up the SoC.
  static DeblendingSystem build(const DeblendConfig& config = {});

  /// One 3 ms frame: raw readings in, mitigation decision out.
  Decision process(const tensor::Tensor& raw_frame);

  /// Stage a qualified replacement model for zero-downtime hot-swap. Opens
  /// an FPGA partial-reconfiguration window of `reconfig_window_frames`
  /// decision ticks: frames arriving inside the window are served by the
  /// *incumbent* float model on the HPS (degraded + reconfiguring flags
  /// set), and the first process() call after the window drains installs
  /// the new firmware on the NN IP, publishes the new float model +
  /// standardizer for fallback, and bumps model_epoch(). No tick is ever
  /// skipped. Throws std::logic_error if a swap is already staged, or
  /// std::invalid_argument on a null/geometry-mismatched candidate.
  /// Single-threaded like process(): call from the decision-loop thread.
  void swap_model(nn::Model float_model, train::Standardizer standardizer,
                  std::shared_ptr<const hls::QuantizedModel> quantized,
                  std::size_t reconfig_window_frames);

  /// True while a staged swap has not yet been installed (reconfiguration
  /// window still open, or install pending on the next process()).
  bool swap_pending() const noexcept { return pending_.has_value(); }
  /// Installed model generation (1 = the model build() trained).
  std::uint64_t model_epoch() const noexcept { return model_epoch_; }

  const nn::Model& float_model() const noexcept { return bundle_.model; }
  const hls::QuantizedModel& quantized() const noexcept { return *qmodel_; }
  /// Shared ownership of the deployed firmware (e.g. to seed a registry);
  /// stays valid across swaps for as long as the caller holds it.
  std::shared_ptr<const hls::QuantizedModel> quantized_ptr() const noexcept {
    return qmodel_;
  }
  const train::Standardizer& standardizer() const noexcept {
    return bundle_.standardizer;
  }
  soc::ArriaSocSystem& soc() noexcept { return *soc_; }
  const hls::ResourceReport& resources() const noexcept { return resources_; }
  const hls::LatencyReport& ip_latency() const noexcept { return ip_latency_; }
  const DeblendConfig& config() const noexcept { return config_; }

 private:
  DeblendingSystem(DeblendConfig config, TrainedBundle bundle);

  /// A qualified candidate staged by swap_model(), waiting for the
  /// reconfiguration window to drain before installation.
  struct PendingSwap {
    nn::Model model;
    train::Standardizer standardizer;
    std::shared_ptr<const hls::QuantizedModel> quantized;
  };

  DeblendConfig config_;
  TrainedBundle bundle_;
  std::shared_ptr<const hls::QuantizedModel> qmodel_;
  std::unique_ptr<soc::ArriaSocSystem> soc_;
  hls::ResourceReport resources_;
  hls::LatencyReport ip_latency_;
  std::optional<PendingSwap> pending_;
  std::uint64_t model_epoch_ = 1;
};

}  // namespace reads::core
