// DeblendingSystem — the library's top-level public API.
//
// Wraps the full deployment of the paper: a trained U-Net, profiled and
// lowered to layer-based 16-bit firmware with the deployed reuse plan,
// running on the simulated Arria 10 SoC. Callers feed raw BLM frames (the
// 260 monitor readings as they arrive over Ethernet) and receive the
// per-frame mitigation decision with its latency accounting.
#pragma once

#include <memory>
#include <optional>

#include "core/pretrained.hpp"
#include "hls/accuracy.hpp"
#include "hls/firmware.hpp"
#include "hls/latency.hpp"
#include "hls/resource.hpp"
#include "soc/system.hpp"

namespace reads::core {

enum class MitigationTarget { kNone, kMainInjector, kRecyclerRing };

std::string_view to_string(MitigationTarget target) noexcept;

/// Which compute produced the probabilities behind a decision.
enum class DecisionSource : std::uint8_t {
  kNnIp,             ///< the quantized NN IP on the fabric (normal path)
  kHpsFloatFallback  ///< float model on the ARM core after the IP wedged
};

std::string_view to_string(DecisionSource source) noexcept;

struct Decision {
  tensor::Tensor probabilities;  ///< (monitors, 2) — MI, RR per monitor
  MitigationTarget target = MitigationTarget::kNone;
  double mi_score = 0.0;  ///< summed MI probability over monitors
  double rr_score = 0.0;
  soc::FrameTiming timing;
  DecisionSource source = DecisionSource::kNnIp;
  /// Watchdog expiries while serving this frame (a successful reset-and-
  /// retry reports them without degrading — the retried output is
  /// bit-identical to a clean run).
  std::size_t watchdog_timeouts = 0;
  /// True when the probabilities did not come from the deployed firmware
  /// (HPS float fallback): numerically close, but not the validated
  /// quantized pipeline, so operators must treat the decision as
  /// low-confidence.
  bool degraded = false;
};

/// Trip logic alone: sum the per-monitor MI/RR probabilities and pick the
/// mitigation target against `trip_threshold`. Shared by the blocking
/// DeblendingSystem::process path and the gateway-served path
/// (core/serving.hpp); timing is left for the caller to fill.
Decision decide(tensor::Tensor probabilities, double trip_threshold);

struct DeblendConfig {
  PretrainedOptions model;
  int total_bits = 16;
  /// Monitors whose summed probability must exceed this for a trip.
  double trip_threshold = 2.0;
  std::size_t calibration_frames = 64;
  soc::SocParams soc;
  hls::LatencyModelParams latency;
  std::uint64_t seed = 7;
};

class DeblendingSystem {
 public:
  /// Train-or-load the model, profile it, lower it, and stand up the SoC.
  static DeblendingSystem build(const DeblendConfig& config = {});

  /// One 3 ms frame: raw readings in, mitigation decision out.
  Decision process(const tensor::Tensor& raw_frame);

  const nn::Model& float_model() const noexcept { return bundle_.model; }
  const hls::QuantizedModel& quantized() const noexcept { return *qmodel_; }
  const train::Standardizer& standardizer() const noexcept {
    return bundle_.standardizer;
  }
  soc::ArriaSocSystem& soc() noexcept { return *soc_; }
  const hls::ResourceReport& resources() const noexcept { return resources_; }
  const hls::LatencyReport& ip_latency() const noexcept { return ip_latency_; }
  const DeblendConfig& config() const noexcept { return config_; }

 private:
  DeblendingSystem(DeblendConfig config, TrainedBundle bundle);

  DeblendConfig config_;
  TrainedBundle bundle_;
  std::unique_ptr<hls::QuantizedModel> qmodel_;
  std::unique_ptr<soc::ArriaSocSystem> soc_;
  hls::ResourceReport resources_;
  hls::LatencyReport ip_latency_;
};

}  // namespace reads::core
