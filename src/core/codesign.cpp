#include "core/codesign.hpp"

#include <stdexcept>

#include "hls/qmodel.hpp"

namespace reads::core {

CodesignOptimizer::CodesignOptimizer(
    const nn::Model& model, std::vector<tensor::Tensor> calibration_inputs,
    CodesignConstraints constraints)
    : model_(model),
      calibration_(std::move(calibration_inputs)),
      profile_(hls::profile_model(model, calibration_)),
      constraints_(constraints) {}

CandidateResult CodesignOptimizer::evaluate(const Candidate& c) const {
  hls::HlsConfig cfg;
  cfg.reuse = c.reuse;
  if (c.strategy == hls::PrecisionStrategy::kUniform) {
    cfg.quant = hls::QuantConfig::uniform({c.total_bits, c.int_bits});
  } else {
    cfg.quant = hls::layer_based_config(model_, profile_, c.total_bits);
  }
  auto fw = hls::compile(model_, cfg);

  CandidateResult result;
  result.candidate = c;
  const auto resources = hls::ResourceModel(constraints_.device).estimate(fw);
  result.alut_utilization = resources.alut_utilization();
  result.dsp_utilization = resources.dsp_utilization();
  result.fits = resources.fits();
  const auto latency = hls::LatencyModel().estimate(fw);
  result.ip_latency_ms = latency.total_ms();
  result.meets_latency = result.ip_latency_ms <= constraints_.max_latency_ms;

  const hls::QuantizedModel qm(std::move(fw));
  result.accuracy = hls::evaluate_quantization(model_, qm, calibration_);
  result.meets_accuracy =
      result.accuracy.accuracy_mi >= constraints_.min_accuracy &&
      result.accuracy.accuracy_rr >= constraints_.min_accuracy;
  return result;
}

CodesignOutcome CodesignOptimizer::run(
    const std::vector<Candidate>& candidates) const {
  if (candidates.empty()) {
    throw std::invalid_argument("CodesignOptimizer: no candidates");
  }
  CodesignOutcome outcome;
  double best_aluts = 1e30;
  for (const auto& c : candidates) {
    auto result = evaluate(c);
    if (result.feasible() && result.alut_utilization < best_aluts) {
      best_aluts = result.alut_utilization;
      outcome.selected = outcome.results.size();
    }
    outcome.results.push_back(std::move(result));
  }
  return outcome;
}

std::vector<Candidate> CodesignOptimizer::default_candidates() const {
  const auto reuse = hls::ReusePolicy::deployed_unet();
  std::vector<Candidate> cs;
  cs.push_back({hls::PrecisionStrategy::kUniform, 18, 10, reuse,
                "uniform ac_fixed<18,10>"});
  cs.push_back({hls::PrecisionStrategy::kUniform, 16, 7, reuse,
                "uniform ac_fixed<16,7>"});
  for (int bits : {12, 14, 16, 18}) {
    cs.push_back({hls::PrecisionStrategy::kLayerBased, bits, 0, reuse,
                  "layer-based <" + std::to_string(bits) + ",x>"});
  }
  return cs;
}

}  // namespace reads::core
