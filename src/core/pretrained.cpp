#include "core/pretrained.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "nn/init.hpp"
#include "nn/serialize.hpp"
#include "train/loss.hpp"
#include "train/optimizer.hpp"
#include "train/trainer.hpp"

namespace reads::core {

namespace {

std::string cache_key(const char* arch, const PretrainedOptions& o) {
  std::ostringstream key;
  key << arch << "_n" << o.train_frames << "_e" << o.epochs << "_b"
      << o.batch_size << "_lr" << o.learning_rate << "_s" << o.seed
      << (o.scaling == blm::InputScaling::kStandardized ? "_std" : "_raw")
      << "_m" << std::hex
      << (blm::MachineConfig::fermilab_like().fingerprint() & 0xFFFFFFFF)
      << ".weights";
  return key.str();
}

/// Reshape a U-Net-shaped dataset ((260,1) in / (260,2) out) for the MLP
/// ((1,260) in / (1,518) out; the paper's MLP has 518 outputs).
train::Dataset reshape_for_mlp(const train::Dataset& src,
                               std::size_t mlp_outputs) {
  train::Dataset dst;
  for (std::size_t i = 0; i < src.size(); ++i) {
    auto in = src.inputs[i].reshaped({1, src.inputs[i].numel()});
    const auto& t = src.targets[i];
    tensor::Tensor out({1, mlp_outputs});
    for (std::size_t j = 0; j < mlp_outputs && j < t.numel(); ++j) {
      out[j] = t[j];
    }
    dst.add(std::move(in), std::move(out));
  }
  return dst;
}

TrainedBundle train_or_load(const char* arch, nn::Model model,
                            const PretrainedOptions& o) {
  const auto dir = model_cache_dir(o);
  const auto path = (std::filesystem::path(dir) / cache_key(arch, o)).string();

  // Data generation is cheap and deterministic; regenerate to recover the
  // standardizer even on a cache hit.
  auto built = blm::build_data(o.train_frames, o.seed, o.scaling);
  TrainedBundle bundle{std::move(model), std::move(built.standardizer)};

  if (std::filesystem::exists(path)) {
    try {
      nn::load_weights(bundle.model, path);
      const auto stamp = read_cache_stamp(path);
      if (!stamp) {
        // Legacy cache written before stamping existed: accept it once (it
        // parsed cleanly) and stamp it so future loads are hash-verified.
        write_cache_stamp(path, bundle.model);
      } else if (stamp->format_version != kWeightCacheFormatVersion) {
        throw std::runtime_error(
            "stale cache format v" + std::to_string(stamp->format_version) +
            " (current v" + std::to_string(kWeightCacheFormatVersion) + ")");
      } else if (stamp->weights_hash != nn::weights_hash(bundle.model)) {
        throw std::runtime_error("cache content hash mismatch");
      }
      bundle.loaded_from_cache = true;
      return bundle;
    } catch (const std::exception& e) {
      // A stale, truncated, or hash-mismatched cache must not abort the
      // caller: fall through to retraining, which overwrites the bad file.
      std::cerr << "[pretrained " << arch << "] ignoring unusable cache ("
                << e.what() << "); retraining\n";
    }
  }

  auto data = std::move(built.dataset);
  const bool is_mlp = std::string(arch) == "mlp";
  if (is_mlp) {
    data = reshape_for_mlp(data, bundle.model.output_shape()[1]);
  }

  nn::init_he_uniform(bundle.model, util::derive_seed(o.seed, /*purpose=*/0x11));
  train::MseLoss loss;
  train::Adam adam(o.learning_rate);
  train::Trainer trainer(bundle.model, loss, adam);
  train::TrainConfig cfg;
  cfg.epochs = o.epochs;
  cfg.batch_size = o.batch_size;
  cfg.shuffle_seed = util::derive_seed(o.seed, /*purpose=*/0x12);
  if (o.verbose) {
    cfg.on_epoch = [arch](std::size_t e, double l) {
      std::cerr << "[pretrained " << arch << "] epoch " << e << " loss " << l
                << "\n";
    };
  }
  const auto result = trainer.fit(std::move(data), cfg);
  bundle.final_loss = result.final_loss();
  nn::save_weights(bundle.model, path);
  write_cache_stamp(path, bundle.model);
  return bundle;
}

}  // namespace

std::string cache_stamp_path(const std::string& weights_path) {
  return weights_path + ".stamp";
}

std::optional<CacheStamp> read_cache_stamp(const std::string& weights_path) {
  std::ifstream in(cache_stamp_path(weights_path));
  if (!in) return std::nullopt;
  std::string version_key, hash_key;
  CacheStamp stamp;
  in >> version_key >> stamp.format_version >> hash_key >> std::hex >>
      stamp.weights_hash;
  if (!in || version_key != "version" || hash_key != "hash") {
    return std::nullopt;
  }
  return stamp;
}

void write_cache_stamp(const std::string& weights_path,
                       const nn::Model& model) {
  std::ofstream out(cache_stamp_path(weights_path),
                    std::ios::out | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot write weight-cache stamp for " +
                             weights_path);
  }
  out << "version " << kWeightCacheFormatVersion << "\n"
      << "hash " << std::hex << nn::weights_hash(model) << "\n";
}

std::string model_cache_dir(const PretrainedOptions& options) {
  std::string dir = options.cache_dir;
  if (dir.empty()) {
    if (const char* env = std::getenv("READS_MODEL_CACHE")) {
      dir = env;
    } else {
      dir = "models";
    }
  }
  std::filesystem::create_directories(dir);
  return dir;
}

TrainedBundle pretrained_unet(const PretrainedOptions& options) {
  nn::UNetConfig cfg;
  cfg.input_batchnorm = options.scaling == blm::InputScaling::kRaw;
  return train_or_load("unet", nn::build_unet(cfg), options);
}

TrainedBundle pretrained_mlp(const PretrainedOptions& options) {
  return train_or_load("mlp", nn::build_mlp(), options);
}

}  // namespace reads::core
