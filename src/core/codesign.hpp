// CodesignOptimizer — the paper's §IV-D methodology as an automated tool.
//
// Given a trained model, a calibration set, and the device/latency/accuracy
// constraints, sweep (precision strategy, total bits, reuse factor)
// candidates; evaluate each candidate's resource fit, IP latency, and
// quantization accuracy; and select the cheapest configuration meeting all
// constraints. This is exactly the loop the authors ran by hand: uniform 18
// bits met accuracy but not resources, uniform 16 met resources but not
// accuracy, layer-based 16 met both.
#pragma once

#include <string>
#include <vector>

#include "hls/accuracy.hpp"
#include "hls/firmware.hpp"
#include "hls/latency.hpp"
#include "hls/profiler.hpp"
#include "hls/resource.hpp"
#include "nn/model.hpp"

namespace reads::core {

struct Candidate {
  hls::PrecisionStrategy strategy;
  int total_bits = 16;
  int int_bits = 7;  ///< uniform only; ignored for layer-based
  hls::ReusePolicy reuse;
  std::string label;
};

struct CandidateResult {
  Candidate candidate;
  hls::AccuracyReport accuracy;
  double alut_utilization = 0.0;
  double dsp_utilization = 0.0;
  double ip_latency_ms = 0.0;
  bool fits = false;
  bool meets_accuracy = false;
  bool meets_latency = false;
  bool feasible() const { return fits && meets_accuracy && meets_latency; }
};

struct CodesignConstraints {
  double min_accuracy = 0.95;     ///< per channel (MI and RR)
  double max_latency_ms = 3.0;    ///< the BLM digitizer poll period
  hls::DeviceSpec device = hls::DeviceSpec::arria10_sx660();
};

struct CodesignOutcome {
  std::vector<CandidateResult> results;
  /// Index of the selected configuration (lowest ALUT use among feasible),
  /// or npos when nothing is feasible.
  std::size_t selected = static_cast<std::size_t>(-1);
  bool found() const { return selected != static_cast<std::size_t>(-1); }
};

class CodesignOptimizer {
 public:
  CodesignOptimizer(const nn::Model& model,
                    std::vector<tensor::Tensor> calibration_inputs,
                    CodesignConstraints constraints = {});

  /// Evaluate one candidate end to end.
  CandidateResult evaluate(const Candidate& candidate) const;

  /// Run the paper's three headline candidates plus a bit-width ladder.
  CodesignOutcome run(const std::vector<Candidate>& candidates) const;

  /// The default candidate set (Table II rows + 12/14/16/18-bit ladder).
  std::vector<Candidate> default_candidates() const;

 private:
  const nn::Model& model_;
  std::vector<tensor::Tensor> calibration_;
  hls::Profile profile_;
  CodesignConstraints constraints_;
};

}  // namespace reads::core
