// VerificationFlow — the staged bring-up of paper §IV-C, reproduced as an
// executable checklist. Each stage mirrors one of the paper's verification
// steps and returns pass/fail plus a human-readable detail line:
//
//   1. control IP FSM on its own (the paper verified it on a Cyclone V
//      with a VHDL testbench in ModelSim);
//   2. the hls4ml flow on the small MLP: quantized output vs Keras output;
//   3. the FPGA-side subsystem (IP + OCRAM + control) sized for the small
//      Cyclone V bring-up board;
//   4. the Avalon bridge path using a trivial single-adder IP;
//   5. the interrupt path;
//   6. the combined system: end-to-end frames vs direct quantized
//      inference (must be bit-identical).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/model.hpp"
#include "train/standardize.hpp"

namespace reads::core {

struct StageResult {
  int stage = 0;
  std::string name;
  bool passed = false;
  std::string detail;
};

struct VerificationReport {
  std::vector<StageResult> stages;
  bool all_passed() const {
    for (const auto& s : stages) {
      if (!s.passed) return false;
    }
    return !stages.empty();
  }
};

/// Run all six stages. `seed` controls the generated test stimuli.
VerificationReport run_verification_flow(std::uint64_t seed = 99);

}  // namespace reads::core
