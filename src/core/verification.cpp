#include "core/verification.hpp"

#include <cmath>
#include <sstream>

#include "blm/data.hpp"
#include "hls/accuracy.hpp"
#include "hls/profiler.hpp"
#include "hls/qmodel.hpp"
#include "hls/resource.hpp"
#include "nn/builders.hpp"
#include "nn/init.hpp"
#include "soc/control_ip.hpp"
#include "soc/event_sim.hpp"
#include "soc/ocram.hpp"
#include "soc/system.hpp"
#include "util/rng.hpp"

namespace reads::core {

namespace {

/// The paper's board-bring-up component: a single adder behind the bridge.
class AdderIp {
 public:
  AdderIp(soc::EventSim& sim, soc::OnChipRam& ram, soc::ControlIp& control)
      : sim_(sim), ram_(ram), control_(control) {}

  void trigger() {
    sim_.schedule_in(30, [this] {  // three fabric cycles
      const auto sum = static_cast<std::int16_t>(ram_.read16(0) + ram_.read16(1));
      ram_.write16(2, sum);
      control_.ip_done();
    });
  }

 private:
  soc::EventSim& sim_;
  soc::OnChipRam& ram_;
  soc::ControlIp& control_;
};

StageResult stage1_control_fsm() {
  StageResult r{1, "IP core control FSM", false, ""};
  soc::EventSim sim;
  soc::ControlIp control(sim, soc::FpgaParams{});
  int starts = 0;
  int irqs = 0;
  control.connect([&] { ++starts; control.ip_done(); }, [&] { ++irqs; });
  if (control.state() != soc::ControlIp::State::kIdle) {
    r.detail = "not idle after reset";
    return r;
  }
  control.write_reg(soc::ControlIp::kCtrl, 0x1);
  sim.run();
  const bool done = control.state() == soc::ControlIp::State::kDone;
  control.write_reg(soc::ControlIp::kCtrl, 0x2);
  const bool idle = control.state() == soc::ControlIp::State::kIdle;
  r.passed = starts == 1 && irqs == 1 && done && idle;
  std::ostringstream d;
  d << "starts=" << starts << " irqs=" << irqs << " done=" << done
    << " cleared=" << idle;
  r.detail = d.str();
  return r;
}

StageResult stage2_mlp_flow(std::uint64_t seed) {
  StageResult r{2, "hls4ml flow on the baseline MLP", false, ""};
  auto model = nn::build_mlp();
  nn::init_he_uniform(model, seed);
  // Random standardized-looking stimuli.
  util::Xoshiro256 rng(util::derive_seed(seed, 2));
  std::vector<tensor::Tensor> inputs;
  for (int i = 0; i < 16; ++i) {
    tensor::Tensor t({1, 260});
    for (auto& v : t.flat()) v = static_cast<float>(rng.normal());
    inputs.push_back(std::move(t));
  }
  const auto profile = hls::profile_model(model, inputs);
  hls::HlsConfig cfg;
  cfg.quant = hls::layer_based_config(model, profile, 16);
  cfg.reuse = hls::ReusePolicy::deployed_mlp();
  const hls::QuantizedModel qm(hls::compile(model, cfg));
  double max_diff = 0.0;
  for (const auto& in : inputs) {
    const auto ref = model.forward(in);
    const auto quant = qm.forward(in);
    max_diff = std::max<double>(max_diff, tensor::max_abs_diff(ref, quant));
  }
  r.passed = max_diff < 0.05;
  r.detail = "max |quant - keras| = " + std::to_string(max_diff);
  return r;
}

StageResult stage3_cyclone_subsystem(std::uint64_t seed) {
  StageResult r{3, "FPGA-side subsystem on Cyclone V", false, ""};
  // A deliberately small IP (the paper tested the subsystem with a smaller
  // IP on the smaller board first).
  nn::MlpConfig small;
  small.inputs = 64;
  small.hidden = 16;
  small.outputs = 8;
  auto model = nn::build_mlp(small);
  nn::init_he_uniform(model, seed);
  hls::HlsConfig cfg;
  cfg.quant = hls::QuantConfig::uniform({16, 7});
  cfg.reuse.default_reuse = 64;
  const auto fw = hls::compile(model, cfg);
  const auto report =
      hls::ResourceModel(hls::DeviceSpec::cyclone5()).estimate(fw);
  r.passed = report.fits();
  std::ostringstream d;
  d << "Cyclone V ALUT utilization "
    << static_cast<int>(report.alut_utilization() * 100.0) << "%";
  r.detail = d.str();
  return r;
}

StageResult stage4_bridge_adder(std::uint64_t seed) {
  StageResult r{4, "Avalon MM bridge with single-adder IP", false, ""};
  soc::EventSim sim;
  soc::OnChipRam ram(8);
  soc::ControlIp control(sim, soc::FpgaParams{});
  AdderIp adder(sim, ram, control);
  bool irq = false;
  control.connect([&] { adder.trigger(); }, [&] { irq = true; });
  util::Xoshiro256 rng(util::derive_seed(seed, 4));
  const auto a = static_cast<std::int16_t>(rng.uniform_int(1000));
  const auto b = static_cast<std::int16_t>(rng.uniform_int(1000));
  // User-space application path: 32-bit writes through the bridge.
  ram.write32(0, static_cast<std::uint16_t>(a) |
                     (static_cast<std::uint32_t>(static_cast<std::uint16_t>(b))
                      << 16));
  control.write_reg(soc::ControlIp::kCtrl, 0x1);
  sim.run();
  const auto sum = ram.read16(2);
  r.passed = irq && sum == static_cast<std::int16_t>(a + b);
  std::ostringstream d;
  d << a << " + " << b << " = " << sum << " (irq=" << irq << ")";
  r.detail = d.str();
  return r;
}

/// Shared fixture for stages 5 and 6: a small U-Net deployment.
struct SystemFixture {
  nn::Model model;
  std::unique_ptr<hls::QuantizedModel> qm;
  std::unique_ptr<soc::ArriaSocSystem> soc;
  std::vector<tensor::Tensor> frames;

  explicit SystemFixture(std::uint64_t seed)
      : model(nn::build_unet({.monitors = 260,
                              .c1 = 8,
                              .c2 = 12,
                              .c3 = 16})) {
    nn::init_he_uniform(model, seed);
    util::Xoshiro256 rng(util::derive_seed(seed, 6));
    for (int i = 0; i < 6; ++i) {
      tensor::Tensor t({260, 1});
      for (auto& v : t.flat()) v = static_cast<float>(rng.normal());
      frames.push_back(std::move(t));
    }
    const auto profile = hls::profile_model(model, frames);
    hls::HlsConfig cfg;
    cfg.quant = hls::layer_based_config(model, profile, 16);
    qm = std::make_unique<hls::QuantizedModel>(hls::compile(model, cfg));
    soc = std::make_unique<soc::ArriaSocSystem>(*qm, soc::SocParams{}, seed);
  }
};

StageResult stage5_interrupt(SystemFixture& fix) {
  StageResult r{5, "interrupt path", false, ""};
  const auto before = fix.soc->control().runs();
  const auto result = fix.soc->process(fix.frames[0]);
  const auto after = fix.soc->control().runs();
  r.passed = after == before + 1 && result.timing.irq_os_us > 0.0;
  std::ostringstream d;
  d << "runs " << before << " -> " << after << ", irq+OS "
    << result.timing.irq_os_us << " us";
  r.detail = d.str();
  return r;
}

StageResult stage6_combined(SystemFixture& fix) {
  StageResult r{6, "combined system vs direct quantized inference", false, ""};
  double max_diff = 0.0;
  for (const auto& f : fix.frames) {
    const auto via_soc = fix.soc->process(f).output;
    const auto direct = fix.qm->forward(f);
    max_diff = std::max<double>(max_diff, tensor::max_abs_diff(via_soc, direct));
  }
  r.passed = max_diff == 0.0;  // the SoC path must be bit-identical
  r.detail = "max |soc - direct| = " + std::to_string(max_diff);
  return r;
}

}  // namespace

VerificationReport run_verification_flow(std::uint64_t seed) {
  VerificationReport report;
  report.stages.push_back(stage1_control_fsm());
  report.stages.push_back(stage2_mlp_flow(seed));
  report.stages.push_back(stage3_cyclone_subsystem(seed));
  report.stages.push_back(stage4_bridge_adder(seed));
  SystemFixture fix(seed);
  report.stages.push_back(stage5_interrupt(fix));
  report.stages.push_back(stage6_combined(fix));
  return report;
}

}  // namespace reads::core
