#include "core/facility_node.hpp"

namespace reads::core {

FacilityNode::FacilityNode(const FacilityNodeConfig& config,
                           DeblendingSystem deblender)
    : config_(config),
      deblender_(std::make_unique<DeblendingSystem>(std::move(deblender))),
      facility_(std::make_unique<net::FacilityLink>(
          config.facility, util::derive_seed(config.seed, 0xFE))),
      acnet_(config.acnet) {}

FacilityNode FacilityNode::build(const FacilityNodeConfig& config) {
  return FacilityNode(config, DeblendingSystem::build(config.deblend));
}

TickReport FacilityNode::tick() {
  TickReport report;
  auto frame = facility_->tick();
  report.sequence = frame.sequence;
  report.network_us = frame.assembly_us;
  report.frame_complete = frame.complete();
  report.stale_hubs = frame.stale_hubs;
  report.packets_rejected = frame.packets_rejected;

  report.decision = deblender_->process(frame.raw);
  report.soc_ms = report.decision.timing.total_ms;
  report.watchdog_timeouts = report.decision.watchdog_timeouts;
  report.nn_source = report.decision.source;
  report.degraded = frame.degraded || report.decision.degraded;

  const auto& msg = acnet_.publish(
      frame.sequence, std::string(to_string(report.decision.target)),
      report.decision.mi_score, report.decision.rr_score);
  report.publish_us = msg.publish_latency_us;

  report.end_to_end_ms =
      report.network_us / 1e3 + report.soc_ms + report.publish_us / 1e3;
  report.deadline_met =
      report.end_to_end_ms <= deblender_->config().soc.deadline_ms;
  return report;
}

}  // namespace reads::core
