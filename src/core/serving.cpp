#include "core/serving.hpp"

#include <algorithm>
#include <thread>
#include <utility>
#include <vector>

#include "serve/backend.hpp"

namespace reads::core {

GatewayDeblender::GatewayDeblender(GatewayDeblendConfig config,
                                   std::unique_ptr<DeblendingSystem> system,
                                   std::unique_ptr<serve::Gateway> gateway)
    : config_(std::move(config)),
      system_(std::move(system)),
      gateway_(std::move(gateway)) {}

GatewayDeblender GatewayDeblender::build(const GatewayDeblendConfig& config) {
  auto system =
      std::make_unique<DeblendingSystem>(DeblendingSystem::build(config.deblend));

  std::size_t replicas = config.replicas;
  if (replicas == 0) {
    replicas = std::max(1u, std::thread::hardware_concurrency());
  }

  serve::GatewayConfig gw_cfg = config.gateway;
  // The gateway enforces the same hard real-time budget the SoC does unless
  // the caller overrode it explicitly.
  if (gw_cfg.deadline_ms == serve::GatewayConfig{}.deadline_ms) {
    gw_cfg.deadline_ms = config.deblend.soc.deadline_ms;
  }

  std::vector<std::unique_ptr<serve::Backend>> backends;
  backends.reserve(replicas);
  for (std::size_t i = 0; i < replicas; ++i) {
    backends.push_back(std::make_unique<serve::QuantizedBackend>(
        system->quantized().firmware()));
  }
  auto gateway =
      std::make_unique<serve::Gateway>(std::move(backends), gw_cfg);
  return GatewayDeblender(config, std::move(system), std::move(gateway));
}

serve::Ticket GatewayDeblender::submit(const tensor::Tensor& raw_frame,
                                       std::uint64_t stream) {
  return gateway_->submit(system_->standardizer().transform(raw_frame),
                          stream);
}

Decision GatewayDeblender::decide(const serve::Response& response) const {
  Decision decision = core::decide(tensor::Tensor(response.output),
                                   config_.deblend.trip_threshold);
  decision.timing.queue_us = response.queue_ms * 1e3;
  decision.timing.total_ms = response.service_ms;
  decision.timing.latency_ms = response.e2e_ms;
  decision.timing.deadline_met = response.deadline_met;
  return decision;
}

}  // namespace reads::core
