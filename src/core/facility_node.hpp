// FacilityNode — the complete central node including the communication
// fabric: BLM hubs over Ethernet (step 0), the SoC processing pipeline
// (steps 1-8), and ACNET status publishing (step 9). This is the composition
// a facility operator would actually deploy; DeblendingSystem alone covers
// only the SoC portion the paper's latency figures measure.
#pragma once

#include <memory>

#include "core/deblender.hpp"
#include "net/acnet.hpp"
#include "net/facility.hpp"

namespace reads::core {

struct FacilityNodeConfig {
  DeblendConfig deblend;
  net::FacilityParams facility;
  net::AcnetParams acnet;
  std::uint64_t seed = 7;
};

/// End-to-end accounting for one 3 ms tick.
struct TickReport {
  std::uint32_t sequence = 0;
  Decision decision;
  double network_us = 0.0;     ///< hub transit + assembly hold-off
  double soc_ms = 0.0;         ///< steps 1-8
  double publish_us = 0.0;     ///< ACNET uplink
  double end_to_end_ms = 0.0;
  bool frame_complete = true;  ///< all hub packets arrived in time
  bool deadline_met = false;
  /// Degraded operation summary, so operators can see *why* a decision is
  /// low-confidence: stale sensing (hub outage past the LKV bound), packet
  /// rejects this tick, or non-firmware compute (NN-IP fallback).
  bool degraded = false;
  std::size_t stale_hubs = 0;
  std::size_t packets_rejected = 0;
  std::size_t watchdog_timeouts = 0;
  DecisionSource nn_source = DecisionSource::kNnIp;
};

class FacilityNode {
 public:
  static FacilityNode build(const FacilityNodeConfig& config = {});

  /// Run one 3 ms tick: sample machine -> hubs -> assemble -> SoC -> ACNET.
  TickReport tick();

  DeblendingSystem& deblender() noexcept { return *deblender_; }
  const net::FacilityLink& facility() const noexcept { return *facility_; }
  /// Mutable access for fault-harness wiring (delivery taps).
  net::FacilityLink& facility_mutable() noexcept { return *facility_; }
  const net::AcnetPublisher& acnet() const noexcept { return acnet_; }

 private:
  FacilityNode(const FacilityNodeConfig& config, DeblendingSystem deblender);

  FacilityNodeConfig config_;
  std::unique_ptr<DeblendingSystem> deblender_;
  std::unique_ptr<net::FacilityLink> facility_;
  net::AcnetPublisher acnet_;
};

}  // namespace reads::core
